// Package service turns the one-shot compilers into a long-running compile
// service: a bounded job queue drained by a worker pool that runs any
// registered compiler backend concurrently (compilation is deterministic per
// seed, so results are safely parallelizable and cacheable), fronted by a
// content-addressed LRU result cache keyed on (backend, circuit fingerprint,
// target, compile options). Backends are selected per request through the
// unified registry (internal/compiler); GET /v1/backends lists them. The
// HTTP/JSON API lives in http.go; the engine here is equally usable
// in-process (cmd/experiments routes the figure drivers' compilations
// through it to dedupe repeated sweeps).
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"atomique/internal/admission"
	"atomique/internal/bench"
	"atomique/internal/circuit"
	"atomique/internal/compiler"
	"atomique/internal/hardware"
	"atomique/internal/metrics"
	"atomique/internal/noise"
	"atomique/internal/obs"
	"atomique/internal/obs/slo"
	"atomique/internal/qasm"
	"atomique/internal/report"

	_ "atomique/internal/compiler/backends" // register the built-in backends
)

// DefaultBackend is the backend used when a request does not name one.
const DefaultBackend = "atomique"

// ErrQueueFull is returned by fail-fast submission when the bounded job
// queue has no free slot; the HTTP layer maps it to 429 Too Many Requests.
var ErrQueueFull = errors.New("service: job queue full")

// ErrOverloaded marks any load-shedding rejection (queue full or admission
// control); errors.Is(err, ErrOverloaded) matches both.
var ErrOverloaded = errors.New("service: overloaded")

// ErrClosed is returned for submissions after Close; the HTTP layer maps it
// to 503 Service Unavailable.
var ErrClosed = errors.New("service: engine closed")

// OverloadedError is the structured load-shed rejection: the HTTP layer
// renders it as a 429 with a Retry-After header computed from the predicted
// queue drain time. QueueFull distinguishes a physically full queue (also
// matched by errors.Is(err, ErrQueueFull)) from a proactive admission shed.
type OverloadedError struct {
	// RetryAfter is the advised client backoff.
	RetryAfter time.Duration
	// Reason explains the shed (queue full, predicted wait over objective).
	Reason string
	// QueueFull marks a full-queue rejection rather than an admission shed.
	QueueFull bool
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("service: overloaded: %s (retry after %s)", e.Reason, e.RetryAfter.Round(time.Millisecond))
}

// Is matches ErrOverloaded always and ErrQueueFull for full-queue sheds, so
// pre-admission callers checking errors.Is(err, ErrQueueFull) keep working.
func (e *OverloadedError) Is(target error) bool {
	return target == ErrOverloaded || (e.QueueFull && target == ErrQueueFull)
}

// RequestError marks a client-side request problem (unknown benchmark,
// malformed QASM, bad options); the HTTP layer maps it to 400 Bad Request.
type RequestError struct {
	Msg string
	// Line is the 1-based QASM source line for parse errors, 0 otherwise.
	Line int
}

func (e *RequestError) Error() string { return e.Msg }

// Config sizes the engine. The zero value gets sensible defaults.
type Config struct {
	// Workers is the initial worker-pool size (default: GOMAXPROCS).
	Workers int
	// WorkersMin and WorkersMax bound the adaptive pool (Resize and the
	// admission controller's actuator clamp to them). When both are unset
	// the pool is fixed at Workers, preserving the pre-adaptive behaviour.
	WorkersMin, WorkersMax int
	// Admission configures the saturation-aware control loop: worker-pool
	// autoscaling within [WorkersMin, WorkersMax] plus load shedding with
	// computed Retry-After. Disabled by default.
	Admission admission.Config
	// QueueSize bounds the job queue (default: 64).
	QueueSize int
	// CacheSize bounds the result cache entry count (default: 256).
	CacheSize int
	// Hardware is the default machine for requests without an override
	// (default: hardware.DefaultConfig).
	Hardware hardware.Config
	// TraceBuffer bounds the finished-trace ring buffer behind GET
	// /v1/traces (default: 256). A quarter of it (at least one slot) is
	// reserved for pinned traces — errors, sheds, and slow-tail outliers —
	// which ordinary churn cannot evict.
	TraceBuffer int
	// TraceSample is the probability a fast successful trace enters the ring
	// (0 defaults to 1 — keep everything; negative keeps nothing). Pinned
	// traces always bypass the coin.
	TraceSample float64
	// SLO declares the burn-rate objectives evaluated against the engine's
	// own counters; an empty config gets slo.DefaultConfig over the three
	// request classes. Invalid configs must be caught by the loader
	// (slo.ParseConfig); New panics on one.
	SLO slo.Config
	// Bundles configures the flight recorder; an empty Dir disables it.
	Bundles BundleConfig
	// Logger receives structured job-lifecycle events, correlated by trace
	// ID (default: discard). cmd/atomiqued passes a JSON logger here.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	// Unset bounds pin the pool at its initial size; explicit bounds clamp
	// the initial size into range.
	if c.WorkersMin <= 0 && c.WorkersMax <= 0 {
		c.WorkersMin, c.WorkersMax = c.Workers, c.Workers
	}
	if c.WorkersMin <= 0 {
		c.WorkersMin = 1
	}
	if c.WorkersMax < c.WorkersMin {
		c.WorkersMax = c.WorkersMin
	}
	if c.Workers < c.WorkersMin {
		c.Workers = c.WorkersMin
	}
	if c.Workers > c.WorkersMax {
		c.Workers = c.WorkersMax
	}
	c.Admission.MinWorkers = c.WorkersMin
	c.Admission.MaxWorkers = c.WorkersMax
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.TraceBuffer <= 0 {
		c.TraceBuffer = 256
	}
	switch {
	case c.TraceSample == 0:
		c.TraceSample = 1
	case c.TraceSample < 0:
		c.TraceSample = 0
	}
	// Only a fully zero Hardware gets the paper default; a non-zero but
	// invalid machine (e.g. an SLM with no AODs) is kept and rejected loudly
	// by Validate at resolve time rather than silently replaced.
	if c.Hardware.NumArrays() <= 1 && c.Hardware.SLM.Capacity() == 0 {
		c.Hardware = hardware.DefaultConfig()
	}
	return c
}

// Request is one compile order: either a named Table II benchmark or inline
// OpenQASM 2.0 source, plus the backend to compile with (default "atomique";
// see GET /v1/backends), compile options, and a device override. FPQA
// backends accept a machine override (any of SLM/AODs/AODSize set builds a
// custom machine; unset fields keep the paper's defaults); fixed-topology
// backends accept a coupling family instead.
type Request struct {
	Benchmark string `json:"benchmark,omitempty"`
	QASM      string `json:"qasm,omitempty"`

	Backend string `json:"backend,omitempty"` // registered backend name

	// Priority is the scheduling class: "interactive" (default) or
	// "batch". Workers strictly prefer interactive jobs, and under load
	// the admission controller sheds batch traffic first. The batch
	// endpoint and the in-process experiments path default to "batch".
	Priority string `json:"priority,omitempty"`

	Seed   int64   `json:"seed,omitempty"`
	Serial bool    `json:"serial,omitempty"` // ablation: serial router
	Dense  bool    `json:"dense,omitempty"`  // ablation: round-robin mapper
	Relax  string  `json:"relax,omitempty"`  // comma-separated constraint IDs (1,2,3)
	Exact  bool    `json:"exact,omitempty"`  // solver backends: exact (exponential) mode
	Budget float64 `json:"budget,omitempty"` // solver backends: compile budget in seconds (0 = backend default)

	// Shots enables Monte-Carlo trajectory noise estimation (0 = off): the
	// compiled program is replayed this many times under sampled noise and
	// the empirical fidelity rides in the result envelope's "noise" field.
	// POST /v1/simulate defaults it to DefaultSimulateShots. All noise
	// options are part of the content-addressed cache key, so noisy and
	// ideal results never alias.
	Shots int `json:"shots,omitempty"`
	// NoiseSeed seeds trajectory sampling, independently of Seed.
	NoiseSeed int64 `json:"noiseSeed,omitempty"`
	// Engine pins the trajectory simulation engine ("auto", "dense",
	// "stab"; empty = auto). Auto dispatches Clifford circuits to the
	// stabilizer engine — which lifts the dense width cap to
	// noise.MaxStabQubits — and everything else to the dense
	// state-vector.
	Engine string `json:"engine,omitempty"`
	// Sample switches the trajectory run from fidelity estimation to
	// measurement sampling (the /v1/sample product): each shot's
	// computational-basis bitstring is recorded and the histogram rides in
	// the envelope's "sample" field instead of a fidelity estimate in
	// "noise". Needs shots > 0.
	Sample bool `json:"sample,omitempty"`
	// ShotOffset is the global index of the first sampled shot (sampling
	// only). Per-shot randomness derives from (noiseSeed, global index), so
	// disjoint shot ranges from separate requests tile into one histogram —
	// sharded, resumable sampling. Each range is its own cache entry.
	ShotOffset int64 `json:"shotOffset,omitempty"`
	// NoiseScale multiplies every noise-channel probability (0 = 1.0).
	NoiseScale float64 `json:"noiseScale,omitempty"`
	// Noise1Q / Noise2Q override the hardware-derived per-gate error
	// probabilities when positive.
	Noise1Q float64 `json:"noise1Q,omitempty"`
	Noise2Q float64 `json:"noise2Q,omitempty"`

	SLM     int    `json:"slm,omitempty"`     // SLM side length (FPQA backends)
	AODs    int    `json:"aods,omitempty"`    // number of AOD arrays (FPQA backends)
	AODSize int    `json:"aodSize,omitempty"` // AOD side length (FPQA backends)
	Family  string `json:"family,omitempty"`  // coupling family (fixed-topology backends)
	// Zones overrides the zone geometry (and optionally the physical
	// parameters) for zoned backends; unset selects the backend's default
	// machine grown to fit the circuit.
	Zones *compiler.ZonedSpec `json:"zones,omitempty"`
}

// State is a job's lifecycle phase.
type State string

// Job lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Job is the externally visible snapshot of a compile job.
type Job struct {
	ID          string          `json:"id"`
	State       State           `json:"state"`
	TraceID     string          `json:"traceId,omitempty"`
	Backend     string          `json:"backend,omitempty"`
	Benchmark   string          `json:"benchmark,omitempty"`
	CircuitHash string          `json:"circuitHash"`
	Cached      bool            `json:"cached"`
	Error       string          `json:"error,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
	SubmittedAt time.Time       `json:"submittedAt"`
	FinishedAt  *time.Time      `json:"finishedAt,omitempty"`
}

// task is a fully resolved compilation: inputs plus the content-addressed
// cache key.
type task struct {
	label   string // benchmark name or request label, informational only
	hash    string // circuit fingerprint
	key     string // cache key
	class   string // request class: ClassCompile or ClassSimulate
	prio    admission.Priority
	backend compiler.Backend
	target  compiler.Target
	circ    *circuit.Circuit
	opts    compiler.Options
	// emit, when set, streams sampled shot records as they are produced
	// (the /v1/sample?stream=1 path). Streaming outcomes bypass the result
	// cache: the records only exist on the live connection.
	emit func([]noise.ShotRecord) error
}

// job is the internal record behind a Job snapshot.
type job struct {
	id     string
	task   task
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed exactly once, by finish

	// trace is the job's request-scoped span tree; its root spans the whole
	// job and every instrumented stage (queue wait, cache lookup, pipeline
	// passes, noise trajectory) hangs off it via j.ctx.
	trace *obs.Trace

	mu         sync.Mutex
	state      State
	finalized  bool // finish already ran; later finish/run calls are no-ops
	out        *outcome
	cached     bool
	submitted  time.Time
	finishedAt time.Time
	// tracedJSON memoises the cached envelope bytes with this job's trace
	// spliced in; built lazily on first snapshot that carries a result, so
	// the in-process metrics path never pays for it.
	tracedJSON []byte
}

// Stats is the /v1/stats payload: queue, worker, cache, and per-pass
// pipeline counters.
type Stats struct {
	Workers       int `json:"workers"` // live workers (including draining retirees)
	WorkersBusy   int `json:"workersBusy"`
	WorkersTarget int `json:"workersTarget"` // adaptive-pool target
	WorkersMin    int `json:"workersMin"`
	WorkersMax    int `json:"workersMax"`
	QueueCapacity int `json:"queueCapacity"` // per priority class
	QueueDepth    int `json:"queueDepth"`    // both classes combined
	// QueueDepthInteractive/Batch split QueueDepth by priority class.
	QueueDepthInteractive int    `json:"queueDepthInteractive"`
	QueueDepthBatch       int    `json:"queueDepthBatch"`
	Submitted             uint64 `json:"submitted"`
	Completed             uint64 `json:"completed"`
	Failed                uint64 `json:"failed"`
	Cancelled             uint64 `json:"cancelled"`
	Rejected              uint64 `json:"rejected"`
	// Panics counts backend panics recovered by workers (the jobs failed;
	// the workers survived).
	Panics        uint64  `json:"panics"`
	CacheHits     uint64  `json:"cacheHits"`
	CacheMisses   uint64  `json:"cacheMisses"`
	CacheEntries  int     `json:"cacheEntries"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// Admission reports the control loop's latest model fit and shed state;
	// nil when admission control is disabled.
	Admission *AdmissionStats `json:"admission,omitempty"`
	// PassSeconds is the cumulative wall time each compile-pipeline pass
	// consumed across every non-cached compilation this engine executed,
	// keyed by pass name; PassRuns counts those executions. Together they
	// show where compile time goes fleet-wide (avg = seconds/runs).
	PassSeconds map[string]float64 `json:"passSeconds,omitempty"`
	PassRuns    uint64             `json:"passRuns,omitempty"`
	// Latencies summarises end-to-end job latency per "backend/class"
	// (e.g. "atomique/compile"): count, sum, and p50/p90/p99 estimated from
	// the same log-bucketed histograms GET /metrics exposes.
	Latencies map[string]obs.Quantiles `json:"latencies,omitempty"`
	// Traces reports the tiered trace ring: adds, pins, sampling drops, and
	// per-segment evictions.
	Traces obs.TraceStoreStats `json:"traces"`
	// SLO is every objective's burn-rate evaluation (the GET /v1/slo
	// payload) and SLOWorst the most severe state across them.
	SLO      []slo.ObjectiveStatus `json:"slo,omitempty"`
	SLOWorst string                `json:"sloWorst,omitempty"`
	// Bundles counts diagnostic bundles held by the flight recorder; -1
	// when the recorder is disabled.
	Bundles int `json:"bundles"`
}

// AdmissionStats is the /v1/stats view of the admission controller: the
// fitted saturation model and the current gate state.
type AdmissionStats struct {
	ArrivalRatePerSecond float64 `json:"arrivalRatePerSecond"`
	ServiceSecondsPerJob float64 `json:"serviceSecondsPerJob"`
	Utilization          float64 `json:"utilization"`
	// PredictedInteractiveWaitSeconds/PredictedBatchWaitSeconds are the
	// queue waits a new submission of each class would see.
	PredictedInteractiveWaitSeconds float64 `json:"predictedInteractiveWaitSeconds"`
	PredictedBatchWaitSeconds       float64 `json:"predictedBatchWaitSeconds"`
	// Saturation is predicted batch wait over the queue-wait objective
	// (>1 means batch traffic is shedding).
	Saturation      float64 `json:"saturation"`
	ShedInteractive bool    `json:"shedInteractive"`
	ShedBatch       bool    `json:"shedBatch"`
	// ShedInteractiveTotal/ShedBatchTotal count admission sheds per class
	// since engine start (queue-full rejections are counted separately
	// under "rejected").
	ShedInteractiveTotal uint64 `json:"shedInteractiveTotal"`
	ShedBatchTotal       uint64 `json:"shedBatchTotal"`
}

// compileFunc is the engine's compilation seam; tests substitute it to
// exercise queueing and cancellation without real compilations.
type compileFunc func(ctx context.Context, b compiler.Backend, tgt compiler.Target, circ *circuit.Circuit, opts compiler.Options) (*compiler.Result, error)

func defaultCompile(ctx context.Context, b compiler.Backend, tgt compiler.Target, circ *circuit.Circuit, opts compiler.Options) (*compiler.Result, error) {
	return b.Compile(ctx, tgt, circ, opts)
}

// maxTrackedJobs bounds the finished-job history kept for GET /v1/jobs/{id}.
const maxTrackedJobs = 4096

// slowTailMinSamples is the histogram mass required before a success is
// compared to the class p99 for slow-tail trace pinning; with fewer samples
// the estimate is noise and every other job would "exceed" it.
const slowTailMinSamples = 100

// Engine is the compile service: priority queues, an adaptive worker pool,
// cache, job registry, and the admission control loop.
type Engine struct {
	cfg Config
	// queues are the bounded per-priority job queues, indexed by
	// admission.Priority; workers drain interactive strictly first.
	queues  [2]chan *job
	cache   *lruCache
	compile compileFunc
	// tel bundles the engine's observability surface: metrics registry
	// (GET /metrics), finished-trace ring (GET /v1/traces), and logger.
	tel *telemetry
	// busy counts workers currently executing a job (workers_busy gauge).
	busy atomic.Int64
	// busySeconds accumulates wall time workers spent running jobs and
	// executed counts those runs; their ratio is the mean service time the
	// admission controller's saturation model fits.
	busySeconds obs.Counter
	executed    atomic.Uint64
	// panics counts recovered backend panics (atomique_panics_total).
	panics atomic.Uint64

	// poolMu guards quits, the adaptive pool's per-worker retirement
	// channels; closing one retires that worker after its current job.
	poolMu        sync.Mutex
	quits         []chan struct{}
	workersTarget atomic.Int64
	workersLive   atomic.Int64

	// ctrl is the admission control loop (nil when disabled); admTick
	// holds its latest tick for gauges and /v1/stats.
	ctrl    *admission.Controller
	admTick atomic.Pointer[admission.Tick]
	// slo is the burn-rate engine behind GET /v1/slo; recorder is the flight
	// recorder behind GET /v1/debug/bundles (nil when Bundles.Dir is unset).
	slo      *slo.Engine
	recorder *obs.Recorder
	// shedByClass counts admission sheds per priority class.
	shedByClass [2]atomic.Uint64

	// benchInfos is the /v1/benchmarks payload, computed once at engine
	// construction (the registry is immutable after init).
	benchInfos []benchmarkInfo

	ctx    context.Context
	stop   context.CancelFunc
	wg     sync.WaitGroup
	start  time.Time
	seq    atomic.Uint64
	closed atomic.Bool
	// closeMu orders submissions against Close: a submitter registers in
	// inFlight under the read lock while the engine is open; Close flips
	// closed under the write lock and then waits for inFlight, so every
	// admitted job is either run by a worker or caught by Close's drain.
	closeMu  sync.RWMutex
	inFlight sync.WaitGroup

	submitted, completed, failed, cancelled, rejected atomic.Uint64
	hits, misses                                      atomic.Uint64

	// passMu guards the per-pass instrumentation aggregated from every
	// executed (non-cached) compilation's metrics.Passes.
	passMu      sync.Mutex
	passSeconds map[string]float64
	passRuns    uint64

	mu       sync.Mutex
	jobs     map[string]*job
	finished []string // FIFO of finished job IDs, for pruning

	// fpMemo caches circuit fingerprints for CompileMetrics, keyed by
	// circuit pointer: in-process callers (the experiments batch path)
	// resubmit the same few circuit objects thousands of times, and those
	// circuits must be treated as immutable once submitted. Bounded (LRU)
	// so long-running callers streaming fresh circuits cannot grow it
	// without limit.
	fpMemo fpMemo
}

// New starts an engine with cfg's worker pool running.
func New(cfg Config) *Engine { return newEngine(cfg, defaultCompile) }

// newEngine starts an engine with an explicit compilation backend (the
// backend must be fixed before the workers start; tests inject stubs here).
func newEngine(cfg Config, fn compileFunc) *Engine {
	cfg = cfg.withDefaults()
	ctx, stop := context.WithCancel(context.Background())
	e := &Engine{
		cfg:         cfg,
		cache:       newLRUCache(cfg.CacheSize),
		compile:     fn,
		ctx:         ctx,
		stop:        stop,
		start:       time.Now(),
		jobs:        make(map[string]*job),
		passSeconds: make(map[string]float64),
	}
	for i := range e.queues {
		e.queues[i] = make(chan *job, cfg.QueueSize)
	}
	e.fpMemo.init(fpMemoLimit)
	e.tel = newTelemetry(e, cfg.Logger, cfg.TraceBuffer)
	e.tel.traces.SetSampleRate(cfg.TraceSample)
	e.benchInfos = computeBenchmarkInfos()
	if cfg.Bundles.Dir != "" {
		rec, err := newRecorder(e)
		if err != nil {
			// A broken bundle directory degrades to "recorder disabled"
			// rather than refusing to serve compiles.
			e.tel.log.Error("flight recorder disabled", "dir", cfg.Bundles.Dir, "error", err.Error())
		} else {
			e.recorder = rec
		}
	}
	e.poolMu.Lock()
	e.workersTarget.Store(int64(cfg.Workers))
	e.spawnLocked(cfg.Workers)
	e.poolMu.Unlock()
	if cfg.Admission.Enabled {
		e.ctrl = admission.New(cfg.Admission, e, e, e.observeTick)
		e.ctrl.Start()
	}
	e.startSLO()
	return e
}

// beginSubmit admits a submission while the engine is open. On success the
// caller must call e.inFlight.Done() once its enqueue attempt is over.
func (e *Engine) beginSubmit() bool {
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed.Load() {
		return false
	}
	e.inFlight.Add(1)
	return true
}

// Close stops the admission controller and the workers, cancels running
// jobs, and fails queued ones.
func (e *Engine) Close() {
	e.closeMu.Lock()
	already := e.closed.Swap(true)
	e.closeMu.Unlock()
	if already {
		return
	}
	if e.ctrl != nil {
		e.ctrl.Stop() // no more Resize calls from the control loop
	}
	if e.slo != nil {
		e.slo.Stop() // no more evaluation ticks or recorder triggers
	}
	// Let any in-flight Resize finish its spawns before waiting on the
	// pool; later Resize calls observe closed and no-op.
	e.poolMu.Lock()
	e.poolMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	e.stop()
	e.wg.Wait()
	e.inFlight.Wait()
	// Workers are gone and no submitter is mid-enqueue; drain jobs still
	// sitting in the queues.
	for _, q := range e.queues {
		for drained := false; !drained; {
			select {
			case j := <-q:
				e.finish(j, &outcome{err: fmt.Errorf("service: %w", ErrClosed)}, false)
			default:
				drained = true
			}
		}
	}
	if e.recorder != nil {
		e.recorder.Wait() // let an in-flight bundle capture complete
	}
}

// benchFingerprints memoises circuit fingerprints for the immutable registry
// benchmarks, keyed by canonical name; hashing tens of thousands of gates per
// request would weigh on the same hot path the registry cache optimises.
var benchFingerprints sync.Map

// resolve turns a Request into a runnable task, reporting client errors as
// *RequestError.
func (e *Engine) resolve(req Request) (task, error) {
	var circ *circuit.Circuit
	var hash string
	label := req.Benchmark
	switch {
	case req.Benchmark != "" && req.QASM != "":
		return task{}, &RequestError{Msg: "request must set either benchmark or qasm, not both"}
	case req.Benchmark != "":
		b, ok := bench.ByName(req.Benchmark)
		if !ok {
			return task{}, &RequestError{Msg: fmt.Sprintf("unknown benchmark %q (see GET /v1/benchmarks)", req.Benchmark)}
		}
		circ = b.Circ
		label = b.Name
		if fp, ok := benchFingerprints.Load(b.Name); ok {
			hash = fp.(string)
		} else {
			hash = circ.Fingerprint()
			benchFingerprints.Store(b.Name, hash)
		}
	case req.QASM != "":
		parsed, err := qasm.ParseString(req.QASM)
		if err != nil {
			re := &RequestError{Msg: err.Error()}
			var pe *qasm.ParseError
			if errors.As(err, &pe) {
				re.Line = pe.Line
			}
			return task{}, re
		}
		circ = parsed
		label = "qasm"
		hash = circ.Fingerprint()
	default:
		return task{}, &RequestError{Msg: "request must set benchmark or qasm"}
	}

	backendName := req.Backend
	if backendName == "" {
		backendName = DefaultBackend
	}
	be, ok := compiler.Lookup(backendName)
	if !ok {
		return task{}, &RequestError{Msg: fmt.Sprintf("unknown backend %q (see GET /v1/backends; registered: %v)",
			backendName, compiler.Names())}
	}

	prio, err := parsePriority(req.Priority)
	if err != nil {
		return task{}, err
	}

	tgt, err := e.resolveTarget(be, req, circ)
	if err != nil {
		return task{}, err
	}

	if req.Budget < 0 {
		return task{}, &RequestError{Msg: "budget must be non-negative seconds"}
	}
	if req.Shots < 0 || req.Shots > compiler.MaxNoisyShots {
		return task{}, &RequestError{Msg: fmt.Sprintf("shots must be in 0..%d", compiler.MaxNoisyShots)}
	}
	if req.NoiseScale < 0 || req.Noise1Q < 0 || req.Noise1Q > 1 || req.Noise2Q < 0 || req.Noise2Q > 1 {
		return task{}, &RequestError{Msg: "noiseScale must be non-negative and noise1Q/noise2Q must be probabilities in [0,1]"}
	}
	if !noise.ValidEngine(req.Engine) {
		return task{}, &RequestError{Msg: fmt.Sprintf("unknown engine %q (valid: %q, %q, %q, or empty for auto)",
			req.Engine, noise.EngineAuto, noise.EngineDense, noise.EngineStab)}
	}
	if req.Shots == 0 && (req.NoiseSeed != 0 || req.NoiseScale != 0 || req.Noise1Q != 0 || req.Noise2Q != 0 || req.Engine != "") {
		return task{}, &RequestError{Msg: "noise options (noiseSeed, noiseScale, noise1Q, noise2Q, engine) need shots > 0"}
	}
	if req.Sample && req.Shots == 0 {
		return task{}, &RequestError{Msg: "sample needs shots > 0"}
	}
	if req.ShotOffset != 0 && !req.Sample {
		return task{}, &RequestError{Msg: "shotOffset applies to sampling only (set sample=true or use POST /v1/sample)"}
	}
	if req.ShotOffset < 0 {
		return task{}, &RequestError{Msg: "shotOffset must be non-negative"}
	}
	if req.Sample && req.ShotOffset+int64(req.Shots) > noise.MaxShotIndex {
		return task{}, &RequestError{Msg: fmt.Sprintf("shot range [%d, %d) exceeds the global shot-index cap %d",
			req.ShotOffset, req.ShotOffset+int64(req.Shots), noise.MaxShotIndex)}
	}
	// A witness wider than the selected trajectory engine's register cap is
	// guaranteed to fail after the compile — reject it up front instead of
	// burning a worker on it. WitnessWidth accounts for declared ancilla
	// overhead (Q-Pilot's flying ancillas). Clifford circuits reach the
	// stabilizer engine (unless the request pins engine=dense), so they are
	// capped at noise.MaxStabQubits instead of the dense wall; backends
	// preserve Cliffordness, which the conformance suite enforces.
	engine := req.Engine
	if req.Shots > 0 {
		w := be.Capabilities().WitnessWidth(circ.N)
		stabEligible := circ.IsClifford() && req.Engine != noise.EngineDense
		if req.Engine == noise.EngineStab && !circ.IsClifford() {
			return task{}, &RequestError{
				Msg: fmt.Sprintf("engine %q needs a Clifford circuit; this circuit has non-Clifford gates (use engine=dense or auto)", noise.EngineStab)}
		}
		if stabEligible && w > noise.MaxStabQubits {
			return task{}, &RequestError{
				Msg: fmt.Sprintf("stabilizer simulation handles witnesses up to %d qubits; backend %q compiles this %d-qubit circuit to a %d-slot witness",
					noise.MaxStabQubits, be.Name(), circ.N, w)}
		}
		if !stabEligible && w > noise.MaxQubits {
			return task{}, &RequestError{
				Msg: fmt.Sprintf("dense noisy simulation handles witnesses up to %d qubits; backend %q compiles this %d-qubit circuit to a %d-slot witness (Clifford circuits dispatch to the stabilizer engine, up to %d qubits)",
					noise.MaxQubits, be.Name(), circ.N, w, noise.MaxStabQubits)}
		}
		// Normalise the engine option to the one that will actually run, so
		// the cache keys on the resolved engine: "auto" (or empty) on a
		// Clifford circuit and an explicit "stab" pin are the same
		// computation and must share one cache entry — while "dense" and
		// "stab" runs of the same circuit never alias.
		if stabEligible {
			engine = noise.EngineStab
		} else {
			engine = noise.EngineDense
		}
	}
	opts := compiler.Options{Seed: req.Seed, SerialRouter: req.Serial, DenseMapper: req.Dense,
		Exact: req.Exact, BudgetSeconds: req.Budget,
		NoisyShots: req.Shots, NoiseSeed: req.NoiseSeed, NoiseScale: req.NoiseScale,
		Noise1Q: req.Noise1Q, Noise2Q: req.Noise2Q, Engine: engine,
		SampleBits: req.Sample, ShotOffset: req.ShotOffset}
	if err := opts.ApplyRelax(req.Relax); err != nil {
		return task{}, &RequestError{Msg: err.Error()}
	}
	// Options outside the backend's declared capabilities (exact/budget on a
	// non-solver backend) are a client error, caught here rather than as a
	// failed job.
	if err := compiler.CheckSupport(be.Name(), be.Capabilities(), tgt, opts); err != nil {
		return task{}, &RequestError{Msg: err.Error()}
	}

	return task{
		label:   label,
		hash:    hash,
		key:     cacheKey(be.Name(), hash, tgt, opts),
		class:   classOf(opts),
		prio:    prio,
		backend: be,
		target:  tgt,
		circ:    circ,
		opts:    opts,
	}, nil
}

// resolveTarget builds the device description a request compiles against:
// FPQA backends get the engine's default machine with any per-request
// override applied; fixed-topology backends get the requested coupling
// family (or their own default). Options that do not apply to the selected
// backend's target kind are rejected, not silently ignored.
func (e *Engine) resolveTarget(be compiler.Backend, req Request, circ *circuit.Circuit) (compiler.Target, error) {
	caps := be.Capabilities()
	hasMachine := req.SLM != 0 || req.AODs != 0 || req.AODSize != 0
	if req.Zones != nil && !caps.Zoned {
		return compiler.Target{}, &RequestError{
			Msg: fmt.Sprintf("backend %q does not compile zoned machines; zones applies only to zoned backends", be.Name())}
	}
	switch {
	case caps.Zoned:
		if hasMachine || req.Family != "" {
			return compiler.Target{}, &RequestError{
				Msg: fmt.Sprintf("backend %q compiles zoned machines; use zones instead of slm/aods/aodSize/family", be.Name())}
		}
		if req.Zones == nil {
			return compiler.Target{}, nil // backend's default zones, grown to fit
		}
		tgt := compiler.Target{Kind: compiler.KindZoned, Zoned: req.Zones}
		if err := tgt.Validate(); err != nil {
			return compiler.Target{}, &RequestError{Msg: err.Error()}
		}
		if circ.N > req.Zones.Geometry.StorageCapacity() {
			return compiler.Target{}, &RequestError{
				Msg: fmt.Sprintf("circuit needs %d qubits, storage zone has %d sites",
					circ.N, req.Zones.Geometry.StorageCapacity())}
		}
		return tgt, nil
	case caps.FPQA:
		if req.Family != "" {
			return compiler.Target{}, &RequestError{
				Msg: fmt.Sprintf("backend %q compiles FPQA machines; family applies only to fixed-topology backends", be.Name())}
		}
		cfg := e.cfg.Hardware
		if req.SLM < 0 || req.AODs < 0 || req.AODSize < 0 {
			// Zero means "keep the engine default", so only negatives are out.
			return compiler.Target{}, &RequestError{Msg: "machine override values (slm, aods, aodSize) must be non-negative"}
		}
		if hasMachine {
			// Partial overrides keep the engine default for unset dimensions
			// (including a non-square configured SLM); overriding aodSize makes
			// the AOD arrays homogeneous at that size.
			slmSpec := cfg.SLM
			if req.SLM > 0 {
				slmSpec = hardware.ArraySpec{Rows: req.SLM, Cols: req.SLM}
			}
			var aodSpec hardware.ArraySpec
			if len(cfg.AODs) > 0 {
				aodSpec = cfg.AODs[0]
			}
			if req.AODSize > 0 {
				aodSpec = hardware.ArraySpec{Rows: req.AODSize, Cols: req.AODSize}
			}
			aods := len(cfg.AODs)
			if req.AODs > 0 {
				aods = req.AODs
			}
			cfg = hardware.Config{SLM: slmSpec, Params: cfg.Params}
			for i := 0; i < aods; i++ {
				cfg.AODs = append(cfg.AODs, aodSpec)
			}
		}
		if err := cfg.Validate(); err != nil {
			return compiler.Target{}, &RequestError{Msg: err.Error()}
		}
		// Site capacity only bounds backends that place circuit qubits onto
		// the machine's trap sites (routing backends). Q-Pilot-style
		// backends take the target solely as a parameter source and lay out
		// their own geometry, so the comparison would be wrong for them.
		if caps.Routes && circ.N > cfg.Capacity() {
			return compiler.Target{}, &RequestError{
				Msg: fmt.Sprintf("circuit needs %d qubits, machine has %d sites", circ.N, cfg.Capacity()),
			}
		}
		return compiler.FPQA(cfg), nil
	case caps.Coupling:
		if hasMachine {
			return compiler.Target{}, &RequestError{
				Msg: fmt.Sprintf("backend %q compiles fixed topologies; slm/aods/aodSize apply only to FPQA backends", be.Name())}
		}
		if req.Family == "" {
			return compiler.Target{}, nil // backend's canonical device
		}
		tgt := compiler.Coupling(req.Family, 0)
		if err := tgt.Validate(); err != nil {
			return compiler.Target{}, &RequestError{Msg: err.Error()}
		}
		return tgt, nil
	default:
		return compiler.Target{}, &RequestError{Msg: fmt.Sprintf("backend %q declares no supported target kind", be.Name())}
	}
}

// cacheKey derives the content-addressed key: backend name and circuit
// fingerprint plus the canonical JSON of the target and compile options
// (which include the seed). Deterministic struct-field order makes the key
// stable; the backend name guarantees two backends never alias an entry.
func cacheKey(backend, fingerprint string, tgt compiler.Target, opts compiler.Options) string {
	h := sha256.New()
	io.WriteString(h, backend)
	io.WriteString(h, "\x00")
	io.WriteString(h, fingerprint)
	enc := json.NewEncoder(h)
	if err := enc.Encode(tgt); err != nil {
		panic(fmt.Sprintf("service: encode target: %v", err))
	}
	if err := enc.Encode(opts); err != nil {
		panic(fmt.Sprintf("service: encode options: %v", err))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// newJob registers a queued job for a resolved task. callerCtx may carry a
// client-chosen trace ID (X-Trace-Id, validated by the HTTP layer); otherwise
// one is minted. The job's own context carries the trace root span, so every
// instrumentation site downstream (cache lookup, pipeline passes, noise
// trajectory) attaches to it without further plumbing.
func (e *Engine) newJob(callerCtx context.Context, t task) *job {
	tr := obs.NewTrace(obs.TraceIDFromContext(callerCtx), "job")
	tr.Root.SetAttr("class", t.class)
	tr.Root.SetAttr("benchmark", t.label)
	if t.backend != nil {
		tr.Root.SetAttr("backend", t.backend.Name())
	}
	ctx, cancel := context.WithCancel(obs.ContextWithSpan(e.ctx, tr.Root))
	j := &job{
		id:        fmt.Sprintf("job-%06d", e.seq.Add(1)),
		task:      t,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		trace:     tr,
		state:     StateQueued,
		submitted: time.Now(),
	}
	tr.Root.SetAttr("job", j.id)
	e.mu.Lock()
	e.jobs[j.id] = j
	e.mu.Unlock()
	return j
}

// Submit resolves and enqueues a job without waiting for it, failing fast
// with an *OverloadedError (a 429 with computed Retry-After at the HTTP
// layer) when the admission controller sheds the request's class or its
// queue is at capacity. ctx is consulted only for a request-scoped trace ID
// (obs.ContextWithTraceID); it does not bound the job's lifetime.
func (e *Engine) Submit(ctx context.Context, req Request) (*Job, error) {
	t, err := e.resolve(req)
	if err != nil {
		return nil, err
	}
	j, err := e.submitResolved(ctx, t)
	if err != nil {
		return nil, err
	}
	return e.snapshot(j), nil
}

// submitResolved enqueues an already-resolved task through the admission
// gate, fail-fast. The streaming sample handler uses it directly so it can
// attach its emit callback to the task before submission.
func (e *Engine) submitResolved(ctx context.Context, t task) (*job, error) {
	if !e.beginSubmit() {
		return nil, ErrClosed
	}
	defer e.inFlight.Done()
	// Admission gate: shed before the queue saturates. No job is minted for
	// a shed, but a minimal root-only trace is pinned into the ring's
	// reserved segment — shed storms are exactly the traffic a diagnostic
	// bundle needs to show, and a storm of successes must not evict them.
	if dec := e.admit(t.prio); !dec.Admit {
		e.rejected.Add(1)
		e.shedByClass[t.prio].Add(1)
		e.tel.admissionDecisions.With(t.prio.String(), admissionShed).Inc()
		e.tel.requests.With(backendLabel(t), t.class, outcomeRejected).Inc()
		tr := obs.NewTrace(obs.TraceIDFromContext(ctx), "shed")
		tr.Root.SetAttr("state", "shed")
		tr.Root.SetAttr("backend", backendLabel(t))
		tr.Root.SetAttr("class", t.class)
		tr.Root.SetAttr("priority", t.prio.String())
		tr.Root.SetAttr("benchmark", t.label)
		tr.Root.SetAttr("reason", dec.Reason)
		tr.Root.SetAttr("retryAfterSeconds", strconv.FormatFloat(dec.RetryAfter.Seconds(), 'g', 4, 64))
		tr.Root.End()
		e.tel.traces.AddPinned(tr)
		e.tel.log.Warn("job shed by admission control",
			"backend", backendLabel(t), "class", t.class, "priority", t.prio.String(),
			"benchmark", t.label, "retryAfter", dec.RetryAfter.Seconds())
		return nil, &OverloadedError{RetryAfter: dec.RetryAfter, Reason: dec.Reason}
	}
	j := e.newJob(ctx, t)
	select {
	case e.queues[t.prio] <- j:
		e.submitted.Add(1)
		e.tel.admissionDecisions.With(t.prio.String(), admissionAdmitted).Inc()
		e.logJob(j, "job queued")
		return j, nil
	default:
		e.rejected.Add(1)
		e.tel.admissionDecisions.With(t.prio.String(), admissionQueueFull).Inc()
		e.tel.requests.With(backendLabel(t), t.class, outcomeRejected).Inc()
		e.tel.log.Warn("job rejected: queue full",
			"backend", backendLabel(t), "class", t.class, "priority", t.prio.String(),
			"benchmark", t.label)
		e.dropJob(j, "rejected")
		return nil, &OverloadedError{RetryAfter: e.retryAfterEstimate(),
			Reason: t.prio.String() + " queue full", QueueFull: true}
	}
}

// backendLabel names a task's backend for metric labels.
func backendLabel(t task) string {
	if t.backend == nil {
		return "unknown"
	}
	return t.backend.Name()
}

// logJob emits one structured lifecycle event correlated by trace ID.
func (e *Engine) logJob(j *job, msg string, extra ...any) {
	args := append([]any{
		"job", j.id, "traceId", j.trace.ID,
		"backend", backendLabel(j.task), "class", j.task.class,
		"benchmark", j.task.label,
	}, extra...)
	e.tel.log.Info(msg, args...)
}

// submitBlocking enqueues a job, waiting for queue space until ctx or the
// engine is done. The batch endpoint and in-process callers use it so a
// burst larger than the queue is flow-controlled instead of rejected.
func (e *Engine) submitBlocking(ctx context.Context, t task) (*job, error) {
	if !e.beginSubmit() {
		return nil, ErrClosed
	}
	defer e.inFlight.Done()
	j := e.newJob(ctx, t)
	select {
	case e.queues[t.prio] <- j:
		e.submitted.Add(1)
		e.tel.admissionDecisions.With(t.prio.String(), admissionAdmitted).Inc()
		e.logJob(j, "job queued")
		return j, nil
	case <-ctx.Done():
		e.dropJob(j, "abandoned")
		return nil, ctx.Err()
	case <-e.ctx.Done():
		e.dropJob(j, "closed")
		return nil, ErrClosed
	}
}

// dropJob unregisters a job that never entered a queue, closing out its
// trace into the ring's pinned segment: rejections are overload evidence,
// which a flood of ordinary successes must not evict.
func (e *Engine) dropJob(j *job, state string) {
	j.cancel()
	j.trace.Root.SetAttr("state", state)
	j.trace.Root.End()
	e.tel.traces.AddPinned(j.trace)
	e.mu.Lock()
	delete(e.jobs, j.id)
	e.mu.Unlock()
}

// Wait blocks until the job finishes (or ctx is done) and returns its final
// snapshot.
func (e *Engine) Wait(ctx context.Context, id string) (*Job, error) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("service: unknown job %q", id)
	}
	select {
	case <-j.done:
		return e.snapshot(j), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Compile is the synchronous path: resolve, enqueue (fail-fast), wait. If
// the caller gives up before completion, the job is cancelled.
func (e *Engine) Compile(ctx context.Context, req Request) (*Job, error) {
	jv, err := e.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	j, err := e.Wait(ctx, jv.ID)
	if err != nil {
		e.Cancel(jv.ID) //nolint:errcheck // best-effort cleanup
		return nil, err
	}
	return j, nil
}

// CompileMetrics is the in-process batch path: it runs one compilation of
// the default (atomique) backend through the queue, worker pool, and cache,
// returning the metrics record. cmd/experiments points the figure drivers
// here so repeated sweeps over identical (circuit, config, options) triples
// hit the cache. Jobs enter at batch priority: experiment sweeps must queue
// behind interactive compiles, not starve them.
func (e *Engine) CompileMetrics(ctx context.Context, cfg hardware.Config, circ *circuit.Circuit, opts compiler.Options) (metrics.Compiled, error) {
	be, ok := compiler.Lookup(DefaultBackend)
	if !ok {
		return metrics.Compiled{}, fmt.Errorf("service: default backend %q not registered", DefaultBackend)
	}
	hash := e.fpMemo.fingerprint(circ)
	tgt := compiler.FPQA(cfg)
	t := task{label: "in-process", hash: hash, key: cacheKey(be.Name(), hash, tgt, opts),
		class: classOf(opts), prio: admission.Batch,
		backend: be, target: tgt, circ: circ, opts: opts}
	j, err := e.submitBlocking(ctx, t)
	if err != nil {
		return metrics.Compiled{}, err
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		j.cancel()
		return metrics.Compiled{}, ctx.Err()
	}
	j.mu.Lock()
	out := j.out
	j.mu.Unlock()
	if out.err != nil {
		return metrics.Compiled{}, out.err
	}
	return out.metrics, nil
}

// JobByID returns a job snapshot.
func (e *Engine) JobByID(id string) (*Job, bool) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		return nil, false
	}
	return e.snapshot(j), true
}

// Cancel requests cancellation of a queued or running job. It reports false
// when the job is unknown and an error when it already finished.
func (e *Engine) Cancel(id string) (bool, error) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		return false, nil
	}
	j.mu.Lock()
	terminal := j.finalized
	state := j.state
	queued := j.state == StateQueued
	j.mu.Unlock()
	if terminal {
		return true, fmt.Errorf("service: job %s already %s", id, state)
	}
	j.cancel()
	if queued {
		// Finish immediately so the caller observes "cancelled" rather than
		// a stale "queued"; the worker that later pops the job finds it
		// finalized and skips it.
		e.finish(j, &outcome{err: fmt.Errorf("service: compilation cancelled: %w", context.Canceled)}, false)
	}
	return true, nil
}

// Stats returns a consistent snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.passMu.Lock()
	passSeconds := make(map[string]float64, len(e.passSeconds))
	for k, v := range e.passSeconds {
		passSeconds[k] = v
	}
	passRuns := e.passRuns
	e.passMu.Unlock()
	latencies := make(map[string]obs.Quantiles)
	e.tel.latency.Each(func(labels []string, h *obs.Histogram) {
		latencies[labels[0]+"/"+labels[1]] = h.Quantiles()
	})
	st := Stats{
		PassSeconds:           passSeconds,
		PassRuns:              passRuns,
		Latencies:             latencies,
		Workers:               int(e.workersLive.Load()),
		WorkersBusy:           int(e.busy.Load()),
		WorkersTarget:         int(e.workersTarget.Load()),
		WorkersMin:            e.cfg.WorkersMin,
		WorkersMax:            e.cfg.WorkersMax,
		QueueCapacity:         e.cfg.QueueSize,
		QueueDepthInteractive: len(e.queues[admission.Interactive]),
		QueueDepthBatch:       len(e.queues[admission.Batch]),
		Submitted:             e.submitted.Load(),
		Completed:             e.completed.Load(),
		Failed:                e.failed.Load(),
		Cancelled:             e.cancelled.Load(),
		Rejected:              e.rejected.Load(),
		Panics:                e.panics.Load(),
		CacheHits:             e.hits.Load(),
		CacheMisses:           e.misses.Load(),
		CacheEntries:          e.cache.len(),
		UptimeSeconds:         time.Since(e.start).Seconds(),
		Traces:                e.tel.traces.Stats(),
		Bundles:               -1,
	}
	st.QueueDepth = st.QueueDepthInteractive + st.QueueDepthBatch
	if e.slo != nil {
		st.SLO = e.slo.Status()
		st.SLOWorst = e.slo.WorstState().String()
	}
	if e.recorder != nil {
		st.Bundles = len(e.recorder.List())
	}
	if e.ctrl != nil {
		t := e.ctrl.Last()
		st.Admission = &AdmissionStats{
			ArrivalRatePerSecond:            t.Lambda,
			ServiceSecondsPerJob:            t.ServiceSeconds,
			Utilization:                     t.Utilization,
			PredictedInteractiveWaitSeconds: t.InteractiveWait.Seconds(),
			PredictedBatchWaitSeconds:       t.BatchWait.Seconds(),
			Saturation:                      t.Saturation,
			ShedInteractive:                 t.ShedInteractive,
			ShedBatch:                       t.ShedBatch,
			ShedInteractiveTotal:            e.shedByClass[admission.Interactive].Load(),
			ShedBatchTotal:                  e.shedByClass[admission.Batch].Load(),
		}
	}
	return st
}

// run executes one job: skip if already cancelled, then compute through the
// cache (coalescing with any in-flight identical computation). The busy
// gauge and service-time accounting are released by defer, and a panic that
// escapes the backend-level recovery in execute (engine bookkeeping, not
// backend code) still fails only this job — the worker survives.
func (e *Engine) run(j *job) {
	if j.ctx.Err() != nil {
		e.finish(j, &outcome{err: fmt.Errorf("service: compilation cancelled: %w", j.ctx.Err())}, false)
		return
	}
	j.mu.Lock()
	if j.finalized {
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	waited := time.Since(j.submitted)
	j.mu.Unlock()
	e.tel.queueWait.ObserveExemplar(waited.Seconds(), j.trace.ID)
	j.trace.Root.Record("queue.wait", j.submitted, waited)
	e.busy.Add(1)
	start := time.Now()
	defer func() {
		e.busy.Add(-1)
		e.busySeconds.Add(time.Since(start).Seconds())
		e.executed.Add(1)
		if r := recover(); r != nil {
			e.recordPanic("worker", r)
			e.finish(j, &outcome{err: fmt.Errorf("service: worker panic: %v", r)}, false)
		}
	}()
	out, cached := e.compute(j.ctx, j.task)
	e.finish(j, out, cached)
}

// compute returns the outcome for a task, via the cache when possible. The
// first requester of a key owns the compilation; concurrent requesters wait
// on its entry (counted as cache hits — no duplicate work happens). If an
// owner is cancelled mid-compile, a live waiter retries and takes ownership.
func (e *Engine) compute(ctx context.Context, t task) (*outcome, bool) {
	// Streaming sample jobs bypass the cache entirely: their product is the
	// live record stream, which only exists on this request's connection —
	// neither serving a histogram from cache nor caching this run's would be
	// the requested computation.
	if t.emit != nil {
		return e.execute(ctx, t), false
	}
	sp := obs.SpanFromContext(ctx)
	for {
		lookupStart := time.Now()
		ent, hit := e.cache.getOrReserve(t.key)
		if !hit {
			e.misses.Add(1)
			e.tel.cacheEvents.With(cacheMiss).Inc()
			if c := sp.Record("cache.lookup", lookupStart, time.Since(lookupStart)); c != nil {
				c.SetAttr("outcome", cacheMiss)
			}
			out := e.execute(ctx, t)
			e.cache.fulfill(ent, out)
			if out.err != nil || out.timedOut {
				// Errors are not cached: cancellations are caller-specific,
				// and client errors are caught at resolve time (backend-side
				// size limits still fail the individual job). Timed-out
				// anytime-solver outcomes are not cached either — the
				// timeout reflects wall-clock load, not the inputs, so a
				// later identical request deserves a fresh attempt.
				e.cache.drop(ent)
			}
			return out, false
		}
		// Distinguish a finished-entry hit from coalescing onto an identical
		// in-flight compilation; the coalesce count is in addition to the hit
		// recorded once the entry resolves.
		lookupOutcome := cacheHit
		select {
		case <-ent.done:
		default:
			lookupOutcome = cacheCoalesce
			e.tel.cacheEvents.With(cacheCoalesce).Inc()
		}
		if c := sp.Record("cache.lookup", lookupStart, time.Since(lookupStart)); c != nil {
			c.SetAttr("outcome", lookupOutcome)
		}
		select {
		case <-ent.done:
			out := ent.out
			if out.err != nil && (errors.Is(out.err, context.Canceled) || errors.Is(out.err, context.DeadlineExceeded)) && ctx.Err() == nil {
				continue // the owner was cancelled, not us: take over
			}
			e.hits.Add(1)
			e.tel.cacheEvents.With(cacheHit).Inc()
			return out, true
		case <-ctx.Done():
			return &outcome{err: fmt.Errorf("service: compilation cancelled: %w", ctx.Err())}, false
		}
	}
}

// execute runs the task's backend and packages the result envelope. A panic
// in the backend (or the noise replay) is recovered here — inside the cache
// ownership window, so the reserved entry is still fulfilled and coalesced
// waiters are woken with the failure instead of hanging — and converted into
// a failed outcome; the worker stays alive (atomique_panics_total counts it).
func (e *Engine) execute(ctx context.Context, t task) (out *outcome) {
	// The compile span wraps the backend run; the pipeline runner sees it via
	// ctx and attaches one "pass:<name>" child per pass.
	cspan := obs.SpanFromContext(ctx).StartChild("compile")
	defer func() {
		if r := recover(); r != nil {
			cspan.End()
			e.recordPanic("backend "+backendLabel(t), r)
			out = &outcome{err: fmt.Errorf("service: backend %s panicked: %v", backendLabel(t), r)}
		}
	}()
	cctx := ctx
	if cspan != nil {
		cspan.SetAttr("backend", backendLabel(t))
		cctx = obs.ContextWithSpan(ctx, cspan)
	}
	res, err := e.compile(cctx, t.backend, t.target, t.circ, t.opts)
	cspan.End()
	if err != nil {
		return &outcome{err: err}
	}
	e.recordPasses(res.Metrics.Passes)
	// Noisy-shot requests replay the compiled program through the
	// trajectory engine on the same worker; the estimate is deterministic
	// per (options, seed), so the outcome stays cacheable. The trajectory
	// engine hangs its witness-replay and chunk spans off the job root in
	// ctx, as siblings of the compile span.
	if t.emit != nil {
		err = compiler.AttachSample(ctx, t.target, res, t.opts, t.emit)
	} else {
		err = compiler.AttachNoise(ctx, t.target, res, t.opts)
	}
	if err != nil {
		return &outcome{err: err}
	}
	if t.opts.NoisyShots > 0 {
		if t.opts.SampleBits {
			e.tel.sampledShots.Add(float64(t.opts.NoisyShots))
		} else {
			e.tel.shots.Add(float64(t.opts.NoisyShots))
		}
	}
	env := report.NewEnvelope(t.hash, res.Metrics)
	env.Backend = res.Backend
	env.Extra = res.Extra
	env.TimedOut = res.TimedOut
	env.Noise = res.Noise
	env.Sample = res.Sample
	js, err := env.EncodeJSON()
	if err != nil {
		return &outcome{err: fmt.Errorf("service: encode result: %w", err)}
	}
	return &outcome{metrics: res.Metrics, json: js, timedOut: res.TimedOut}
}

// recordPasses folds one compilation's per-pass timings into the engine-wide
// aggregate surfaced by Stats. Cache hits never reach here, so the aggregate
// reflects compute actually spent.
func (e *Engine) recordPasses(passes []metrics.PassTiming) {
	if len(passes) == 0 {
		return
	}
	e.passMu.Lock()
	e.passRuns++
	for _, p := range passes {
		e.passSeconds[p.Name] += p.Seconds
	}
	e.passMu.Unlock()
	for _, p := range passes {
		e.tel.passSeconds.With(p.Name).Add(p.Seconds)
		e.tel.passLatency.With(p.Name).Observe(p.Seconds)
	}
}

// finish moves a job to its terminal state and wakes waiters. It is
// idempotent: a job cancelled while queued may be finished by Cancel and
// again by the worker that later pops it from the queue.
func (e *Engine) finish(j *job, out *outcome, cached bool) {
	j.mu.Lock()
	if j.finalized {
		j.mu.Unlock()
		return
	}
	j.finalized = true
	switch {
	case out.err == nil:
		j.state = StateDone
		e.completed.Add(1)
	case errors.Is(out.err, context.Canceled) || errors.Is(out.err, context.DeadlineExceeded):
		j.state = StateCancelled
		e.cancelled.Add(1)
	default:
		j.state = StateFailed
		e.failed.Add(1)
	}
	j.out = out
	j.cached = cached
	j.finishedAt = time.Now()
	state := j.state
	elapsed := j.finishedAt.Sub(j.submitted)
	j.mu.Unlock()
	j.cancel() // release the context resources
	close(j.done)

	// Close out the trace and publish the observability record: outcome
	// counter, latency histogram (successes only — cancellations would skew
	// the percentiles the autoscaler feeds on, carrying this job's trace ID
	// as an OpenMetrics exemplar), trace ring, log line. Retention is
	// tiered: failures and slow-tail successes (over the class's current
	// p99, once the histogram has enough mass to trust it) pin into the
	// ring's reserved segment; ordinary successes take the sampling coin.
	outcomeLabel := outcomeDone
	switch state {
	case StateFailed:
		outcomeLabel = outcomeFailed
	case StateCancelled:
		outcomeLabel = outcomeCancelled
	}
	backend := backendLabel(j.task)
	pin := state == StateFailed
	if state == StateDone {
		// Snapshot before observing so the job is not compared to a p99 that
		// already includes it.
		hist := e.tel.latency.With(backend, j.task.class)
		if snap := hist.Snapshot(); snap.Count >= slowTailMinSamples &&
			elapsed.Seconds() > snap.Quantile(0.99) {
			pin = true
			j.trace.Root.SetAttr("slowTail", "over-p99")
		}
		hist.ObserveExemplar(elapsed.Seconds(), j.trace.ID)
	}
	j.trace.Root.SetAttr("state", string(state))
	j.trace.Root.SetAttr("cached", strconv.FormatBool(cached))
	j.trace.Root.End()
	if pin {
		e.tel.traces.AddPinned(j.trace)
	} else {
		e.tel.traces.Add(j.trace)
	}
	e.tel.requests.With(backend, j.task.class, outcomeLabel).Inc()
	if out.err != nil {
		e.logJob(j, "job finished", "state", state, "seconds", elapsed.Seconds(),
			"cached", cached, "error", out.err.Error())
	} else {
		e.logJob(j, "job finished", "state", state, "seconds", elapsed.Seconds(),
			"cached", cached)
	}

	e.mu.Lock()
	e.finished = append(e.finished, j.id)
	for len(e.finished) > maxTrackedJobs {
		delete(e.jobs, e.finished[0])
		e.finished = e.finished[1:]
	}
	e.mu.Unlock()
}

// snapshot renders a job's externally visible state.
func (e *Engine) snapshot(j *job) *Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := &Job{
		ID:          j.id,
		State:       j.state,
		TraceID:     j.trace.ID,
		Benchmark:   j.task.label,
		CircuitHash: j.task.hash,
		Cached:      j.cached,
		SubmittedAt: j.submitted,
	}
	if j.task.backend != nil {
		v.Backend = j.task.backend.Name()
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		v.FinishedAt = &t
	}
	if j.out != nil {
		if j.out.err != nil {
			v.Error = j.out.err.Error()
		} else {
			// Splice this job's trace into the (trace-free, byte-identical)
			// cached envelope, once per job; a splice failure falls back to
			// the raw cached bytes rather than failing the response.
			if j.tracedJSON == nil {
				j.tracedJSON = j.out.json
				if j.finalized {
					if spliced, err := report.WithTrace(j.out.json, j.trace.ID, j.trace.Root.Snapshot()); err == nil {
						j.tracedJSON = spliced
					}
				}
			}
			v.Result = json.RawMessage(j.tracedJSON)
		}
	}
	return v
}
