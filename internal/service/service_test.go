package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"atomique/internal/bench"
	"atomique/internal/circuit"
	"atomique/internal/compiler"
	"atomique/internal/core"
	"atomique/internal/hardware"
	"atomique/internal/metrics"
	"atomique/internal/report"
)

// stripTrace removes the request-scoped trace fields from result bytes:
// cache-identity assertions compare the content-addressed payload, which by
// design excludes the per-job traceId/trace splice.
func stripTrace(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	out, err := report.WithTrace([]byte(raw), "", nil)
	if err != nil {
		t.Fatalf("strip trace: %v", err)
	}
	return out
}

// waitState polls until the job reaches a state in want or the deadline hits.
func waitState(t *testing.T, e *Engine, id string, want ...State) *Job {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := e.JobByID(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		for _, s := range want {
			if j.State == s {
				return j
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	j, _ := e.JobByID(id)
	t.Fatalf("job %s stuck in state %s, want one of %v", id, j.State, want)
	return nil
}

func TestCompileNamedBenchmark(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	j, err := e.Compile(context.Background(), Request{Benchmark: "H2-4", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateDone {
		t.Fatalf("state = %s, want done (err %q)", j.State, j.Error)
	}
	if len(j.Result) == 0 {
		t.Fatal("no result envelope")
	}
	if j.CircuitHash == "" {
		t.Fatal("no circuit hash")
	}
	if !j.FinishedAt.After(j.SubmittedAt) {
		t.Fatalf("finishedAt %v not after submittedAt %v", j.FinishedAt, j.SubmittedAt)
	}
}

// TestPassTimingsInStatsAndEnvelope covers the pipeline instrumentation
// end to end: a real compilation surfaces per-pass timings both in the
// result envelope (metrics.passes) and in the engine-wide Stats aggregate,
// while cache hits leave the aggregate untouched.
func TestPassTimingsInStatsAndEnvelope(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	j, err := e.Compile(context.Background(), Request{Benchmark: "H2-4", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Metrics struct {
			Passes []struct {
				Name    string  `json:"name"`
				Seconds float64 `json:"seconds"`
			} `json:"passes"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(j.Result, &env); err != nil {
		t.Fatal(err)
	}
	names := core.PassNames()
	if len(env.Metrics.Passes) != len(names) {
		t.Fatalf("envelope has %d passes, want %d", len(env.Metrics.Passes), len(names))
	}
	for i, p := range env.Metrics.Passes {
		if p.Name != names[i] {
			t.Errorf("envelope pass %d = %q, want %q", i, p.Name, names[i])
		}
	}

	st := e.Stats()
	if st.PassRuns != 1 {
		t.Fatalf("passRuns = %d, want 1", st.PassRuns)
	}
	for _, name := range names {
		if _, ok := st.PassSeconds[name]; !ok {
			t.Errorf("stats missing pass %q: %v", name, st.PassSeconds)
		}
	}

	// A cache hit performs no passes: the aggregate must not move.
	if _, err := e.Compile(context.Background(), Request{Benchmark: "H2-4", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.PassRuns != 1 {
		t.Errorf("passRuns after cache hit = %d, want 1", st.PassRuns)
	}
}

func TestResolveErrors(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	cases := []struct {
		name string
		req  Request
	}{
		{"empty", Request{}},
		{"both", Request{Benchmark: "H2-4", QASM: "qreg q[2];"}},
		{"unknown benchmark", Request{Benchmark: "no-such-bench"}},
		{"bad relax", Request{Benchmark: "H2-4", Relax: "1,9"}},
		{"too many qubits", Request{Benchmark: "QAOA-regu6-100", SLM: 4, AODs: 2, AODSize: 4}},
		{"negative override", Request{Benchmark: "H2-4", AODs: -1}},
		{"bad qasm", Request{QASM: "OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];"}},
	}
	for _, tc := range cases {
		_, err := e.Submit(context.Background(), tc.req)
		var re *RequestError
		if !errors.As(err, &re) {
			t.Errorf("%s: err = %v, want *RequestError", tc.name, err)
		}
	}
	// Parse errors carry the source line.
	_, err := e.Submit(context.Background(), Request{QASM: "OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];"})
	var re *RequestError
	if !errors.As(err, &re) || re.Line != 3 {
		t.Fatalf("qasm error = %#v, want line 3", err)
	}
}

// TestConcurrentIdenticalRequests is the cache acceptance check: N identical
// requests issued concurrently compile exactly once (1 miss, N-1 coalesced
// hits) and every response carries byte-identical envelope JSON.
func TestConcurrentIdenticalRequests(t *testing.T) {
	const n = 8
	e := New(Config{Workers: 4})
	defer e.Close()
	req := Request{Benchmark: "H2-4", Seed: 7}

	var wg sync.WaitGroup
	results := make([]*Job, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = e.Compile(context.Background(), req)
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if results[i].State != StateDone {
			t.Fatalf("request %d: state %s (%s)", i, results[i].State, results[i].Error)
		}
		if !bytes.Equal(stripTrace(t, results[i].Result), stripTrace(t, results[0].Result)) {
			t.Fatalf("request %d: result bytes differ from request 0", i)
		}
	}
	st := e.Stats()
	if st.CacheMisses != 1 {
		t.Errorf("cache misses = %d, want 1", st.CacheMisses)
	}
	if st.CacheHits != n-1 {
		t.Errorf("cache hits = %d, want %d", st.CacheHits, n-1)
	}
	if st.CacheEntries != 1 {
		t.Errorf("cache entries = %d, want 1", st.CacheEntries)
	}

	// A later identical request is also a pure hit with identical bytes.
	again, err := e.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("repeat request not marked cached")
	}
	if !bytes.Equal(stripTrace(t, again.Result), stripTrace(t, results[0].Result)) {
		t.Error("repeat request result bytes differ")
	}
	// A different seed is a different key.
	other, err := e.Compile(context.Background(), Request{Benchmark: "H2-4", Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if other.Cached {
		t.Error("different-seed request unexpectedly cached")
	}
}

// TestCacheKeyIncludesBackend pins the no-aliasing property: the same
// circuit, seed, and device compiled by two different backends must occupy
// two cache entries, and every key component perturbs the key.
func TestCacheKeyIncludesBackend(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()

	atom, err := e.resolve(Request{Benchmark: "H2-4", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	qp, err := e.resolve(Request{Benchmark: "H2-4", Seed: 1, Backend: "qpilot"})
	if err != nil {
		t.Fatal(err)
	}
	if atom.key == qp.key {
		t.Fatal("atomique and qpilot resolve to the same cache key")
	}
	// Both backends see FPQA targets here, so the only difference is the
	// backend name component.
	if atom.hash != qp.hash {
		t.Fatal("same circuit produced different fingerprints")
	}

	// End to end: compiling the same request on two backends yields two
	// misses and two cache entries, never a cross-backend hit.
	for _, backend := range []string{"", "qpilot"} {
		if _, err := e.Compile(context.Background(), Request{Benchmark: "H2-4", Seed: 1, Backend: backend}); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.CacheMisses != 2 || st.CacheHits != 0 || st.CacheEntries != 2 {
		t.Errorf("misses/hits/entries = %d/%d/%d, want 2/0/2", st.CacheMisses, st.CacheHits, st.CacheEntries)
	}
}

// TestResolveBudgetAndCapacity pins two resolve behaviours: the budget
// field reaches the backend options (negative rejected), and the machine
// capacity check applies only to backends that place qubits on the machine
// (qpilot lays out its own geometry, so over-capacity circuits are fine).
func TestResolveBudgetAndCapacity(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()

	tk, err := e.resolve(Request{Benchmark: "H2-4", Backend: "solverref", Exact: true, Budget: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if !tk.opts.Exact || tk.opts.BudgetSeconds != 1.5 {
		t.Errorf("opts = %+v, want Exact with 1.5s budget", tk.opts)
	}
	var re *RequestError
	if _, err := e.resolve(Request{Benchmark: "H2-4", Budget: -1}); !errors.As(err, &re) {
		t.Errorf("negative budget err = %v, want *RequestError", err)
	}

	big := "OPENQASM 2.0;\nqreg q[350];\ncx q[0],q[1];\n" // over the 300-site default machine
	if _, err := e.resolve(Request{QASM: big, Backend: "qpilot"}); err != nil {
		t.Errorf("qpilot over-capacity resolve rejected: %v", err)
	}
	if _, err := e.resolve(Request{QASM: big}); !errors.As(err, &re) {
		t.Errorf("atomique over-capacity err = %v, want *RequestError", err)
	}
}

// TestTimedOutResultsNotCached: a budget-bounded solver run that times out
// reflects wall-clock load, not the inputs, so it must never poison the
// cache — an identical later request recompiles.
func TestTimedOutResultsNotCached(t *testing.T) {
	calls := 0
	e := newEngine(Config{Workers: 1}, func(_ context.Context, _ compiler.Backend, _ compiler.Target, circ *circuit.Circuit, _ compiler.Options) (*compiler.Result, error) {
		calls++
		return &compiler.Result{Backend: "stub", TimedOut: true,
			Metrics: metrics.Compiled{Arch: "stub", NQubits: circ.N}}, nil
	})
	defer e.Close()
	for i := 0; i < 2; i++ {
		j, err := e.Compile(context.Background(), Request{Benchmark: "H2-4", Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if j.State != StateDone {
			t.Fatalf("attempt %d state = %s", i, j.State)
		}
	}
	if calls != 2 {
		t.Errorf("backend ran %d times, want 2 (timed-out outcome must not be cached)", calls)
	}
	if st := e.Stats(); st.CacheEntries != 0 {
		t.Errorf("cache entries = %d, want 0", st.CacheEntries)
	}
}

// TestResolveDefaultBackend: an empty backend field selects atomique.
func TestResolveDefaultBackend(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	tk, err := e.resolve(Request{Benchmark: "H2-4"})
	if err != nil {
		t.Fatal(err)
	}
	if tk.backend.Name() != DefaultBackend {
		t.Errorf("default backend = %q, want %q", tk.backend.Name(), DefaultBackend)
	}
	if tk.target.Kind != compiler.KindFPQA {
		t.Errorf("default target kind = %q, want fpqa", tk.target.Kind)
	}
}

// blockingBackend is a compile stub that parks until released (or its
// context is cancelled), for queue and cancellation tests.
type blockingBackend struct {
	started chan string // job labels as they enter the backend
	release chan struct{}
}

func newBlockingBackend() *blockingBackend {
	return &blockingBackend{started: make(chan string, 16), release: make(chan struct{})}
}

func (b *blockingBackend) compile(ctx context.Context, _ compiler.Backend, _ compiler.Target, circ *circuit.Circuit, _ compiler.Options) (*compiler.Result, error) {
	b.started <- "started"
	select {
	case <-b.release:
		return &compiler.Result{Backend: "stub", Metrics: metrics.Compiled{Arch: "stub", NQubits: circ.N}}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func TestQueueBackpressure(t *testing.T) {
	backend := newBlockingBackend()
	e := newEngine(Config{Workers: 1, QueueSize: 1}, backend.compile)
	defer e.Close()

	// First job occupies the single worker.
	if _, err := e.Submit(context.Background(), Request{Benchmark: "H2-4", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	<-backend.started
	// Second job fills the queue.
	if _, err := e.Submit(context.Background(), Request{Benchmark: "H2-4", Seed: 2}); err != nil {
		t.Fatal(err)
	}
	// Third submission must be rejected.
	if _, err := e.Submit(context.Background(), Request{Benchmark: "H2-4", Seed: 3}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if st := e.Stats(); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}
	close(backend.release)
}

func TestJobCancellation(t *testing.T) {
	backend := newBlockingBackend()
	e := newEngine(Config{Workers: 1, QueueSize: 4}, backend.compile)
	defer e.Close()

	running, err := e.Submit(context.Background(), Request{Benchmark: "H2-4", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-backend.started
	queued, err := e.Submit(context.Background(), Request{Benchmark: "H2-4", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Cancel the queued job first: the worker must skip it.
	if ok, err := e.Cancel(queued.ID); !ok || err != nil {
		t.Fatalf("cancel queued: ok=%v err=%v", ok, err)
	}
	// Cancel the running job: the backend observes ctx and aborts.
	if ok, err := e.Cancel(running.ID); !ok || err != nil {
		t.Fatalf("cancel running: ok=%v err=%v", ok, err)
	}
	r := waitState(t, e, running.ID, StateCancelled)
	if r.Error == "" {
		t.Error("cancelled job has no error message")
	}
	waitState(t, e, queued.ID, StateCancelled)

	if st := e.Stats(); st.Cancelled != 2 {
		t.Errorf("cancelled = %d, want 2", st.Cancelled)
	}
	// Cancelling a finished job is a conflict; unknown jobs are not found.
	if ok, err := e.Cancel(running.ID); !ok || err == nil {
		t.Errorf("re-cancel finished: ok=%v err=%v, want conflict", ok, err)
	}
	if ok, _ := e.Cancel("job-999999"); ok {
		t.Error("cancel of unknown job reported found")
	}
}

func TestCacheEviction(t *testing.T) {
	e := New(Config{Workers: 2, CacheSize: 2})
	defer e.Close()
	for seed := int64(1); seed <= 3; seed++ {
		if _, err := e.Compile(context.Background(), Request{Benchmark: "H2-4", Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.CacheEntries != 2 {
		t.Errorf("cache entries = %d, want 2 after eviction", st.CacheEntries)
	}
	// Seed 1 was evicted (LRU), so it recompiles: a miss, not a hit.
	before := e.Stats().CacheMisses
	if _, err := e.Compile(context.Background(), Request{Benchmark: "H2-4", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if after := e.Stats().CacheMisses; after != before+1 {
		t.Errorf("misses = %d, want %d (evicted key must recompile)", after, before+1)
	}
}

// TestCompileContextCancellation checks the router-loop cancellation hook
// end to end: a cancelled context aborts core.CompileContext.
func TestCompileContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, ok := bench.ByName("QAOA-regu5-40")
	if !ok {
		t.Fatal("benchmark missing")
	}
	_, err := core.CompileContext(ctx, hardware.DefaultConfig(), b.Circ, core.Options{Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
