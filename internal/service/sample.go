package service

import (
	"encoding/json"
	"net/http"

	"atomique/internal/noise"
	"atomique/internal/obs"
)

// DefaultSampleShots is the shot count POST /v1/sample uses when a request
// leaves shots unset.
const DefaultSampleShots = 4096

// handleSample is the measurement-sampling workload entry point: compile
// (through the cache, like every job), then sample each trajectory's
// computational-basis bitstring instead of estimating fidelity. The
// histogram rides in the envelope's "sample" field.
//
// Without ?stream=1 it is POST /v1/compile with sampling defaulted on —
// including the ?async=1 contract and the content-addressed cache, so a
// resubmitted shard (same circuit, options, seed, and shot range) is a
// cache hit. With ?stream=1 the response is NDJSON: one line per shot
// record, in global shot order, followed by a final result-envelope line;
// streaming runs bypass the cache because the record stream only exists on
// this connection.
//
// Sample jobs default to batch priority: a million-shot sampling job is
// throughput work that must queue behind interactive compiles.
func (e *Engine) handleSample(w http.ResponseWriter, r *http.Request) {
	var req Request
	if !decodeRequest(w, r, &req) {
		return
	}
	req.Sample = true
	if req.Shots == 0 {
		req.Shots = DefaultSampleShots
	}
	if req.Priority == "" {
		req.Priority = PriorityBatch
	}
	stream := false
	if v := r.URL.Query().Get("stream"); v != "" {
		b, err := parseBoolParam("stream", v)
		if err != nil {
			writeError(w, err)
			return
		}
		stream = b
	}
	if !stream {
		e.serveCompile(w, r, req)
		return
	}
	e.serveSampleStream(w, r, req)
}

// parseBoolParam parses a boolean query parameter into a RequestError on
// failure, so writeError maps it to 400.
func parseBoolParam(name, v string) (bool, error) {
	switch v {
	case "1", "t", "true", "T", "TRUE", "True":
		return true, nil
	case "0", "f", "false", "F", "FALSE", "False":
		return false, nil
	}
	return false, &RequestError{Msg: "bad " + name + " value " + v}
}

// serveSampleStream runs one sampling job with a live NDJSON shot stream.
// The job goes through the same admission gate, priority queue, and worker
// pool as everything else; the worker's emit callback writes record batches
// straight to the response (the emitter in internal/noise serialises calls
// and preserves global shot order). Client disconnect cancels the job
// mid-run. Errors before the first record are proper HTTP error responses;
// after the first record the status is already committed, so failures
// surface as a final {"error": ...} line.
func (e *Engine) serveSampleStream(w http.ResponseWriter, r *http.Request, req Request) {
	t, err := e.resolve(req)
	if err != nil {
		writeError(w, err)
		return
	}
	// The worker goroutine writes the response body through emit while this
	// goroutine waits, so headers — committed by the first write — must be
	// final before submission; nothing may touch the header map afterwards.
	// That means minting the trace ID up front rather than echoing the job's.
	ctx := r.Context()
	traceID := obs.TraceIDFromContext(ctx)
	if traceID == "" {
		traceID = obs.MintTraceID()
		ctx = obs.ContextWithTraceID(ctx, traceID)
	}
	w.Header().Set(TraceHeader, traceID)
	w.Header().Set("Content-Type", "application/x-ndjson")

	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	wrote := false // worker writes before finish; handler reads after j.done
	t.emit = func(batch []noise.ShotRecord) error {
		wrote = true
		for i := range batch {
			if err := enc.Encode(&batch[i]); err != nil {
				return err
			}
		}
		e.tel.streamedShots.Add(float64(len(batch)))
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	j, err := e.submitResolved(ctx, t)
	if err != nil {
		w.Header().Del("Content-Type")
		writeError(w, err)
		return
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		// Client gone: cancel the job so the worker stops sampling, then
		// wait for it to actually finish before touching the writer again.
		j.cancel()
		<-j.done
	}
	jv := e.snapshot(j)
	switch {
	case jv.State == StateDone:
		// Final line: the full result envelope (metrics + histogram), the
		// same payload the non-streaming path returns.
		w.Write(jv.Result) //nolint:errcheck // client gone; nothing to do
		if _, err := w.Write([]byte("\n")); err == nil && flusher != nil {
			flusher.Flush()
		}
	case !wrote:
		// Nothing sent yet: report the failure with a real status code.
		w.Header().Del("Content-Type")
		msg := jv.Error
		if msg == "" {
			msg = "job " + string(jv.State)
		}
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: msg})
	default:
		// Mid-stream failure or cancellation: the 200 is committed, so the
		// error rides as a final NDJSON line clients can detect.
		enc.Encode(errorBody{Error: "job " + string(jv.State) + ": " + jv.Error}) //nolint:errcheck
	}
}
