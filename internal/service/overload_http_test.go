package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// newBlockingServer serves a real Handler over an engine whose backend parks
// until released — the HTTP-level overload fixture.
func newBlockingServer(t *testing.T, cfg Config) (*Engine, *blockingBackend, *httptest.Server) {
	t.Helper()
	backend := newBlockingBackend()
	e := newEngine(cfg, backend.compile)
	srv := httptest.NewServer(e.Handler())
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	return e, backend, srv
}

// retryAfterSeconds parses the Retry-After header, failing on absence.
func retryAfterSeconds(t *testing.T, resp *http.Response) int {
	t.Helper()
	h := resp.Header.Get("Retry-After")
	if h == "" {
		t.Fatalf("status %d response has no Retry-After header", resp.StatusCode)
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer seconds >= 1", h)
	}
	return secs
}

// TestQueueFull429CarriesRetryAfter: an HTTP submission rejected by a full
// queue must be a 429 with backoff advice in both the header and the body.
func TestQueueFull429CarriesRetryAfter(t *testing.T) {
	_, backend, srv := newBlockingServer(t, Config{Workers: 1, QueueSize: 1})
	defer close(backend.release)

	if resp, body := postJSON(t, srv.URL+"/v1/compile?async=1", Request{Benchmark: "H2-4", Seed: 1}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status = %d, body %s", resp.StatusCode, body)
	}
	<-backend.started
	if resp, body := postJSON(t, srv.URL+"/v1/compile?async=1", Request{Benchmark: "H2-4", Seed: 2}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit status = %d, body %s", resp.StatusCode, body)
	}
	resp, body := postJSON(t, srv.URL+"/v1/compile?async=1", Request{Benchmark: "H2-4", Seed: 3})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit status = %d, body %s", resp.StatusCode, body)
	}
	headerSecs := retryAfterSeconds(t, resp)
	var eb struct {
		Error             string `json:"error"`
		RetryAfterSeconds int    `json:"retryAfterSeconds"`
	}
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("decode 429 body %s: %v", body, err)
	}
	if eb.RetryAfterSeconds != headerSecs {
		t.Errorf("body retryAfterSeconds = %d, header %d; must agree", eb.RetryAfterSeconds, headerSecs)
	}
	if eb.Error == "" {
		t.Error("429 body has no error message")
	}
}

// TestClosedEngine503: submissions after shutdown are 503 (route elsewhere),
// not 500 (server bug), and still advise a retry.
func TestClosedEngine503(t *testing.T) {
	e := New(Config{Workers: 1})
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()
	e.Close()

	resp, body := postJSON(t, srv.URL+"/v1/compile", Request{Benchmark: "H2-4", Seed: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status after Close = %d, body %s, want 503", resp.StatusCode, body)
	}
	retryAfterSeconds(t, resp)
}

// TestBatchEndpointQueuesAtBatchPriority: items submitted through
// /v1/compile/batch with no explicit priority land in the batch queue, so
// interactive compiles overtake them.
func TestBatchEndpointQueuesAtBatchPriority(t *testing.T) {
	e, backend, srv := newBlockingServer(t, Config{Workers: 1, QueueSize: 8})

	// Occupy the single worker.
	if resp, body := postJSON(t, srv.URL+"/v1/compile?async=1", Request{Benchmark: "H2-4", Seed: 1}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("occupy submit status = %d, body %s", resp.StatusCode, body)
	}
	<-backend.started

	// The batch call blocks until its jobs finish; run it in the background
	// and watch the batch queue fill.
	batchDone := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, srv.URL+"/v1/compile/batch", batchRequest{Requests: []Request{
			{Benchmark: "H2-4", Seed: 2}, {Benchmark: "H2-4", Seed: 3},
		}})
		batchDone <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && e.Stats().QueueDepthBatch < 2 {
		time.Sleep(2 * time.Millisecond)
	}
	if st := e.Stats(); st.QueueDepthBatch != 2 || st.QueueDepthInteractive != 0 {
		t.Fatalf("queue depths interactive=%d batch=%d, want 0/2 (batch items misclassified)",
			st.QueueDepthInteractive, st.QueueDepthBatch)
	}
	close(backend.release)
	if code := <-batchDone; code != http.StatusOK {
		t.Fatalf("batch status = %d, want 200", code)
	}
}
