package service

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"atomique/internal/admission"
	"atomique/internal/circuit"
	"atomique/internal/compiler"
)

// TestSoakAdaptiveBurst is the acceptance soak: steady interactive traffic,
// then a 10x interactive+batch burst against a pool that starts at one
// worker. The controller must scale the pool up to absorb the burst, keep
// interactive latency bounded (shedding batch first when it cannot), attach
// retry advice to everything it sheds, and scale back down once the burst
// passes. Durations are kept short enough for ordinary CI runs; the loadgen
// binary covers the longer out-of-process variant.
func TestSoakAdaptiveBurst(t *testing.T) {
	const serviceTime = 2 * time.Millisecond
	e := newEngine(Config{
		Workers: 1, WorkersMin: 1, WorkersMax: 8,
		QueueSize: 64, CacheSize: 16384,
		Admission: admission.Config{
			Enabled:         true,
			Interval:        5 * time.Millisecond,
			TargetQueueWait: 30 * time.Millisecond,
			ScaleDownTicks:  3,
		},
	}, func(ctx context.Context, _ compiler.Backend, _ compiler.Target, circ *circuit.Circuit, _ compiler.Options) (*compiler.Result, error) {
		select {
		case <-time.After(serviceTime):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return stubResult(circ), nil
	})
	defer e.Close()

	// Background watcher: record the worker-target trajectory.
	var maxTarget atomic.Int64
	watchDone := make(chan struct{})
	watchStop := make(chan struct{})
	go func() {
		defer close(watchDone)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-watchStop:
				return
			case <-tick.C:
				if cur := e.workersTarget.Load(); cur > maxTarget.Load() {
					maxTarget.Store(cur)
				}
			}
		}
	}()

	type sample struct {
		latency time.Duration
		err     error
	}
	var mu sync.Mutex
	interactive := []sample{}
	var shed, shedNoAdvice, batchSent atomic.Int64
	var seed atomic.Int64
	var inflight sync.WaitGroup

	fire := func(prio string) {
		defer inflight.Done()
		t0 := time.Now()
		_, err := e.Compile(context.Background(), Request{
			Benchmark: "H2-4", Seed: seed.Add(1), Priority: prio,
		})
		if errors.Is(err, ErrOverloaded) {
			shed.Add(1)
			var oe *OverloadedError
			if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
				shedNoAdvice.Add(1)
			}
			return
		}
		if err != nil {
			t.Errorf("%s compile: %v", prio, err)
			return
		}
		if prio == PriorityInteractive {
			mu.Lock()
			interactive = append(interactive, sample{latency: time.Since(t0)})
			mu.Unlock()
		}
	}
	// Open-loop arrivals: n requests spaced gap apart, fired without waiting
	// for earlier ones — a saturated pool sees real pressure.
	drive := func(prio string, n int, gap time.Duration) {
		for i := 0; i < n; i++ {
			inflight.Add(1)
			go fire(prio)
			if prio == PriorityBatch {
				batchSent.Add(1)
			}
			time.Sleep(gap)
		}
	}

	// Phase 1 — baseline: ~50/s interactive, comfortably inside one worker.
	drive(PriorityInteractive, 15, 20*time.Millisecond)

	// Phase 2 — burst: 10x interactive plus a batch flood. λ·s ≈
	// (500/s + 250/s) · 2ms ≈ 1.5 busy workers, with queue backlogs pushing
	// the drain term well past that.
	var burst sync.WaitGroup
	burst.Add(2)
	go func() { defer burst.Done(); drive(PriorityInteractive, 150, 2*time.Millisecond) }()
	go func() { defer burst.Done(); drive(PriorityBatch, 75, 4*time.Millisecond) }()
	burst.Wait()
	inflight.Wait()

	// Phase 3 — recovery: with the load gone the target must damp back down.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && e.workersTarget.Load() > 2 {
		time.Sleep(5 * time.Millisecond)
	}
	close(watchStop)
	<-watchDone

	if got := maxTarget.Load(); got < 3 {
		t.Errorf("max workersTarget during burst = %d, want >= 3 (pool never scaled up)", got)
	}
	if got := e.workersTarget.Load(); got > 2 {
		t.Errorf("workersTarget after recovery = %d, want <= 2 (pool never scaled down)", got)
	}
	if n := shedNoAdvice.Load(); n != 0 {
		t.Errorf("%d shed requests carried no retry advice", n)
	}

	mu.Lock()
	lat := append([]sample(nil), interactive...)
	mu.Unlock()
	if len(lat) < 100 {
		t.Fatalf("only %d interactive requests completed; burst did not run", len(lat))
	}
	durs := make([]time.Duration, len(lat))
	for i, s := range lat {
		durs[i] = s.latency
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	p99 := durs[len(durs)*99/100]
	if p99 > 400*time.Millisecond {
		t.Errorf("interactive p99 = %s under burst, want <= 400ms (admission failed to protect it)", p99)
	}
	t.Logf("soak: interactive n=%d p99=%s, shed=%d of %d batch sent, maxTarget=%d, finalTarget=%d",
		len(durs), p99, shed.Load(), batchSent.Load(), maxTarget.Load(), e.workersTarget.Load())
}
