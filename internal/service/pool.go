package service

import (
	"fmt"
	"runtime/debug"
	"strconv"
	"time"

	"atomique/internal/admission"
	"atomique/internal/obs"
)

// Priority names accepted in the request "priority" field.
const (
	PriorityInteractive = "interactive"
	PriorityBatch       = "batch"
)

// parsePriority maps the request field to an admission.Priority; empty means
// interactive (the default for direct compile/simulate calls).
func parsePriority(s string) (admission.Priority, error) {
	switch s {
	case "", PriorityInteractive:
		return admission.Interactive, nil
	case PriorityBatch:
		return admission.Batch, nil
	default:
		return 0, &RequestError{Msg: fmt.Sprintf("unknown priority %q (interactive or batch)", s)}
	}
}

// spawnWorkers grows the pool to target under poolMu; used at construction
// and by Resize.
func (e *Engine) spawnLocked(n int) {
	for i := 0; i < n; i++ {
		quit := make(chan struct{})
		e.quits = append(e.quits, quit)
		e.wg.Add(1)
		e.workersLive.Add(1)
		go e.worker(quit)
	}
}

// Resize sets the worker-pool target, clamped into [WorkersMin, WorkersMax].
// Growth spawns workers immediately; shrinking retires the newest workers
// gracefully — each finishes its current job before exiting (the live count
// converges to the target as they drain). Returns the applied target.
func (e *Engine) Resize(target int) int {
	if target < e.cfg.WorkersMin {
		target = e.cfg.WorkersMin
	}
	if target > e.cfg.WorkersMax {
		target = e.cfg.WorkersMax
	}
	e.poolMu.Lock()
	defer e.poolMu.Unlock()
	if e.closed.Load() {
		return int(e.workersTarget.Load())
	}
	cur := len(e.quits)
	switch {
	case target > cur:
		e.spawnLocked(target - cur)
	case target < cur:
		for _, quit := range e.quits[target:] {
			close(quit)
		}
		e.quits = e.quits[:target]
	}
	e.workersTarget.Store(int64(target))
	return target
}

// SetWorkerTarget implements admission.Actuator.
func (e *Engine) SetWorkerTarget(n int) { e.Resize(n) }

// AdmissionSample implements admission.Sampler: one consistent-enough view
// of the queueing state for the control loop.
func (e *Engine) AdmissionSample() admission.Snapshot {
	return admission.Snapshot{
		Time:             time.Now(),
		InteractiveDepth: len(e.queues[admission.Interactive]),
		BatchDepth:       len(e.queues[admission.Batch]),
		QueueCapacity:    e.cfg.QueueSize,
		Busy:             int(e.busy.Load()),
		Live:             int(e.workersLive.Load()),
		Target:           int(e.workersTarget.Load()),
		Admitted:         e.submitted.Load(),
		Executed:         e.executed.Load(),
		BusySeconds:      e.busySeconds.Value(),
	}
}

// observeTick exports one control-loop tick: the gauges read the stored tick
// at scrape time, and a tick that changes the actuation or shed state is
// recorded as an "admission" trace (collect → optimize → actuate spans) in
// the same ring GET /v1/traces serves — the controller's decisions are
// browsable next to the jobs they shaped.
func (e *Engine) observeTick(t admission.Tick) {
	prev := e.admTick.Swap(&t)
	// A tick that starts shedding is the onset of saturation — capture a
	// diagnostic bundle while the overload is live (debounced, so a flapping
	// controller cannot fill the bundle ring).
	if (t.ShedBatch || t.ShedInteractive) &&
		(prev == nil || !(prev.ShedBatch || prev.ShedInteractive)) {
		e.triggerBundle("saturation",
			fmt.Sprintf("shedding (saturation %.2f, workers %d)", t.Saturation, t.Target), false)
	}
	if prev != nil && prev.Target == t.Target &&
		prev.ShedBatch == t.ShedBatch && prev.ShedInteractive == t.ShedInteractive {
		return
	}
	tr := obs.NewTrace("", "admission")
	root := tr.Root
	root.SetAttr("lambdaPerSecond", strconv.FormatFloat(t.Lambda, 'g', 4, 64))
	root.SetAttr("serviceSeconds", strconv.FormatFloat(t.ServiceSeconds, 'g', 4, 64))
	root.Record("collect", t.At, 0).SetAttr("utilization", strconv.FormatFloat(t.Utilization, 'g', 4, 64))
	opt := root.Record("optimize", t.At, 0)
	opt.SetAttr("interactiveWait", t.InteractiveWait.String())
	opt.SetAttr("batchWait", t.BatchWait.String())
	opt.SetAttr("saturation", strconv.FormatFloat(t.Saturation, 'g', 4, 64))
	act := root.Record("actuate", t.At, 0)
	act.SetAttr("workersTarget", strconv.Itoa(t.Target))
	act.SetAttr("shedBatch", strconv.FormatBool(t.ShedBatch))
	act.SetAttr("shedInteractive", strconv.FormatBool(t.ShedInteractive))
	root.End()
	e.tel.traces.Add(tr)
	e.tel.log.Info("admission tick",
		"workersTarget", t.Target, "shedBatch", t.ShedBatch, "shedInteractive", t.ShedInteractive,
		"lambdaPerSecond", t.Lambda, "serviceSeconds", t.ServiceSeconds, "saturation", t.Saturation)
}

// admit consults the controller for a fail-fast submission. Without a
// controller (admission disabled) everything is admitted.
func (e *Engine) admit(p admission.Priority) admission.Decision {
	if e.ctrl == nil {
		return admission.Decision{Admit: true}
	}
	return e.ctrl.Admit(p)
}

// retryAfterEstimate advises a client backoff for a queue-full rejection:
// the time the current backlog needs to drain at the observed mean service
// time, floored at one control period's worth of patience.
func (e *Engine) retryAfterEstimate() time.Duration {
	svc := e.cfg.Admission.DefaultServiceSeconds
	if svc <= 0 {
		svc = 0.05
	}
	if e.ctrl != nil {
		if t := e.ctrl.Last(); t.ServiceSeconds > 0 {
			svc = t.ServiceSeconds
		}
	}
	live := int(e.workersLive.Load())
	if live < 1 {
		live = 1
	}
	depth := len(e.queues[admission.Interactive]) + len(e.queues[admission.Batch])
	d := time.Duration(float64(depth+1) * svc / float64(live) * float64(time.Second))
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	return d
}

// worker drains the queues until retired (quit) or the engine stops.
// Interactive jobs are strictly preferred: a ready interactive job is taken
// before the scheduler ever considers the batch queue, so batch backlogs
// cannot starve interactive compiles.
func (e *Engine) worker(quit chan struct{}) {
	defer e.wg.Done()
	defer e.workersLive.Add(-1)
	for {
		// Retirement and shutdown are only honoured between jobs: a retired
		// worker drains its current job first (graceful drain).
		select {
		case <-e.ctx.Done():
			return
		case <-quit:
			return
		default:
		}
		select {
		case j := <-e.queues[admission.Interactive]:
			e.run(j)
			continue
		default:
		}
		select {
		case <-e.ctx.Done():
			return
		case <-quit:
			return
		case j := <-e.queues[admission.Interactive]:
			e.run(j)
		case j := <-e.queues[admission.Batch]:
			e.run(j)
		}
	}
}

// recordPanic counts and logs a recovered panic (atomique_panics_total) and
// trips the flight recorder — the goroutine dump in the bundle shows what the
// rest of the pool was doing when the worker blew up.
func (e *Engine) recordPanic(where string, r any) {
	e.panics.Add(1)
	e.tel.panicsTotal.Inc()
	e.tel.log.Error("recovered panic", "where", where, "panic", fmt.Sprint(r),
		"stack", string(debug.Stack()))
	e.triggerBundle("panic", where+": "+fmt.Sprint(r), false)
}
