package geyser

import (
	"testing"

	"atomique/internal/bench"
	"atomique/internal/circuit"
)

func TestBlockCountSimple(t *testing.T) {
	// Three gates on the same two qubits: one block.
	c := circuit.New(4)
	c.CX(0, 1)
	c.H(0)
	c.CX(0, 1)
	if got := BlockCount(c); got != 1 {
		t.Errorf("BlockCount = %d, want 1", got)
	}
	// Gates spanning four distinct qubits: at least two blocks.
	d := circuit.New(4)
	d.CX(0, 1)
	d.CX(2, 3)
	d.CX(1, 2)
	if got := BlockCount(d); got < 2 {
		t.Errorf("BlockCount = %d, want >= 2", got)
	}
}

func TestBlockCountEmpty(t *testing.T) {
	if got := BlockCount(circuit.New(3)); got != 0 {
		t.Errorf("BlockCount(empty) = %d, want 0", got)
	}
}

func TestBlockingBeatsOneBlockPerGate(t *testing.T) {
	c := bench.QV(16, 8, 1)
	blocks := BlockCount(c)
	if blocks >= c.NumGates() {
		t.Errorf("blocking gained nothing: %d blocks for %d gates", blocks, c.NumGates())
	}
	if blocks == 0 {
		t.Errorf("no blocks produced")
	}
}

func TestAtomiqueBeatsGeyserOnPulses(t *testing.T) {
	// Table III's qualitative claim: Atomique uses fewer pulses, up to 6.5x.
	// BV circuits are the extreme case (sparse interaction, heavy blocking
	// overhead under Geyser).
	c := bench.BV(50, 22, 4)
	g, err := Compile(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Atomique compiles BV-50 with no SWAPs: 22 two-qubit gates.
	atomPulses := AtomiquePulses(22)
	if atomPulses >= g.Pulses {
		t.Errorf("Atomique pulses %d >= Geyser pulses %d", atomPulses, g.Pulses)
	}
}

func TestCompileAccountsRouting(t *testing.T) {
	c := bench.MerminBell(10, 58, 2)
	g, err := Compile(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Pulses != g.Blocks*PulsesPerBlock {
		t.Errorf("pulse arithmetic wrong: %d != %d*%d", g.Pulses, g.Blocks, PulsesPerBlock)
	}
	if g.Routed2Q < c.Num2Q() {
		t.Errorf("routed 2Q %d below source %d", g.Routed2Q, c.Num2Q())
	}
}
