// Package geyser implements the Geyser comparator of Table III. Geyser
// (Patel et al., ISCA 2022) compiles neutral-atom circuits by re-synthesising
// them into three-qubit blocks executed as native multi-qubit pulses; the
// paper compares pulse counts, using 2n-1 pulses for an n-qubit gate as the
// fidelity proxy (more pulses, lower fidelity).
//
// This reference implementation reproduces the accounting: the circuit is
// routed onto the triangular FAA Geyser targets, greedily blocked into
// sub-circuits spanning at most three *physically adjacent* qubits (blocks
// must form connected regions of the lattice, which is what fragments
// Geyser's blocking in practice), and scored at five pulses per block
// (2*3-1). Atomique's pulse count is 3 per compiled two-qubit gate (2*2-1),
// exactly as Table III computes it.
package geyser

import (
	"atomique/internal/arch"
	"atomique/internal/circuit"
	"atomique/internal/graphs"
	"atomique/internal/sabre"
)

// PulsesPerBlockGate is the pulse cost of one native three-qubit gate
// (2n-1 with n=3).
const PulsesPerBlockGate = 5

// GatesPerBlock is the number of native three-qubit gates Geyser's
// dual-annealing synthesis needs for a generic block unitary (the paper caps
// the annealer at 1e5 function calls; published syntheses land at ~4).
const GatesPerBlock = 4

// PulsesPerBlock is the total pulse cost of synthesising one block.
const PulsesPerBlock = GatesPerBlock * PulsesPerBlockGate

// PulsesPerCZ is the pulse cost of a two-qubit gate (2n-1 with n=2), the
// accounting used for Atomique's row of Table III.
const PulsesPerCZ = 3

// Result summarises a Geyser compilation.
type Result struct {
	Blocks int
	Pulses int
	// Routed2Q is the two-qubit gate count after FAA-triangular routing
	// (block synthesis starts from the routed circuit).
	Routed2Q int
	// SwapCount is the number of SWAPs routing inserted (each three CX).
	SwapCount int
	// Routed is the physical circuit block synthesis starts from, over the
	// device's qubits, and FinalMapping maps logical qubit -> physical qubit
	// after execution. Blocking only regroups this stream into pulses, so it
	// is the execution witness the backend verification replays.
	Routed       *circuit.Circuit
	FinalMapping []int
}

// Compile routes circ onto the triangular FAA and blocks the physical
// circuit into three-qubit pulses.
func Compile(circ *circuit.Circuit, seed int64) (Result, error) {
	return CompileOn(arch.FAATriangular(circ.N), circ, seed)
}

// CompileOn is Compile against an explicit fixed-topology device; the
// unified-backend adapter uses it to honour coupling targets.
func CompileOn(a arch.Arch, circ *circuit.Circuit, seed int64) (Result, error) {
	if circ.N > a.Coupling.N {
		return Result{}, errTooLarge{circ.N, a.Coupling.N}
	}
	res := sabre.Route(circ, a.Coupling, sabre.Options{Seed: seed})
	blocks := BlockCountOn(res.Routed, a.Coupling)
	return Result{
		Blocks:       blocks,
		Pulses:       blocks * PulsesPerBlock,
		Routed2Q:     res.Routed.Num2Q(),
		SwapCount:    res.SwapCount,
		Routed:       res.Routed,
		FinalMapping: res.FinalMapping,
	}, nil
}

type errTooLarge [2]int

func (e errTooLarge) Error() string {
	return "geyser: circuit too large for device"
}

// AtomiquePulses converts a compiled two-qubit gate count into the pulse
// metric of Table III.
func AtomiquePulses(n2q int) int { return n2q * PulsesPerCZ }

// BlockCountOn greedily partitions the circuit DAG into blocks of at most
// three qubits that form a connected region of the coupling graph: each
// block opens with the first frontier gate and absorbs frontier gates while
// every newly added qubit is adjacent to a qubit already in the block.
func BlockCountOn(c *circuit.Circuit, cg *graphs.Coupling) int {
	return blockCount(c, func(cur map[int]bool, q int) bool {
		for b := range cur {
			if cg.Adjacent(b, q) {
				return true
			}
		}
		return false
	})
}

// BlockCount partitions the circuit DAG into blocks of at most three qubits
// with no physical-adjacency restriction (logical blocking).
func BlockCount(c *circuit.Circuit) int {
	return blockCount(c, func(map[int]bool, int) bool { return true })
}

// blockCount drives the frontier blocking; joinable reports whether qubit q
// may join the block given its current qubit set.
func blockCount(c *circuit.Circuit, joinable func(map[int]bool, int) bool) int {
	front := circuit.NewFrontier(circuit.NewDAG(c))
	blocks := 0
	for !front.Done() {
		first := front.Front()[0]
		cur := map[int]bool{}
		for _, q := range front.Gate(first).Qubits() {
			cur[q] = true
		}
		front.Execute(first)
		blocks++
		for progress := true; progress; {
			progress = false
			for _, gi := range append([]int(nil), front.Front()...) {
				qs := front.Gate(gi).Qubits()
				fits := true
				extra := 0
				for _, q := range qs {
					if cur[q] {
						continue
					}
					extra++
					if !joinable(cur, q) {
						fits = false
						break
					}
				}
				if !fits || len(cur)+extra > 3 {
					continue
				}
				for _, q := range qs {
					cur[q] = true
				}
				front.Execute(gi)
				progress = true
			}
		}
	}
	return blocks
}
