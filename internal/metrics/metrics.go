// Package metrics defines the result record every compiler in this
// repository produces, mirroring the quantities the paper's evaluation
// reports: two-qubit gate count, two-qubit depth, fidelity breakdown,
// SWAP-inserted CNOTs (Fig 25), execution time and movement distance
// (Figs 20/22-24), and compile time (Fig 14).
package metrics

import (
	"math"
	"time"

	"atomique/internal/fidelity"
)

// Compiled summarises one compilation outcome.
type Compiled struct {
	Name string // benchmark name
	Arch string // architecture/compiler label

	NQubits   int
	N2Q       int // two-qubit interactions executed (incl. SWAP decomposition)
	N1Q       int // one-qubit gates executed
	Depth2Q   int // parallel two-qubit layers (router stages on RAA)
	N1QLayers int // parallel one-qubit layers

	SwapCount  int // SWAPs inserted during routing
	AddedCNOTs int // CNOT overhead of SWAP insertion (3 per SWAP)

	ExecutionTime float64 // wall-clock schedule length in seconds
	MoveStages    int     // movement stages (RAA only)
	TotalMoveDist float64 // total atom movement in meters (RAA only)
	AvgMoveDist   float64 // average movement distance per stage in meters
	CoolingEvents int     // AOD cooling swaps performed
	Overlaps      int     // gates rejected from a stage by the overlap rule

	CompileTime time.Duration
	Fidelity    fidelity.Breakdown
}

// FidelityTotal is shorthand for the total fidelity product.
func (c Compiled) FidelityTotal() float64 { return c.Fidelity.Total() }

// GeoMean returns the geometric mean of vals, skipping non-positive entries
// (the paper's GMean columns clamp zeros the same way).
func GeoMean(vals []float64) float64 {
	prod := 1.0
	n := 0
	for _, v := range vals {
		if v > 0 {
			prod *= v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}
