// Package metrics defines the result record every compiler in this
// repository produces, mirroring the quantities the paper's evaluation
// reports: two-qubit gate count, two-qubit depth, fidelity breakdown,
// SWAP-inserted CNOTs (Fig 25), execution time and movement distance
// (Figs 20/22-24), and compile time (Fig 14).
package metrics

import (
	"math"
	"time"

	"atomique/internal/fidelity"
)

// Compiled summarises one compilation outcome. The JSON field names are the
// stable wire format of the compile service's result envelope
// (internal/report.Envelope); CompileTime serialises as integer nanoseconds.
type Compiled struct {
	Name string `json:"name,omitempty"` // benchmark name
	Arch string `json:"arch"`           // architecture/compiler label

	NQubits   int `json:"nQubits"`
	N2Q       int `json:"n2Q"`       // two-qubit interactions executed (incl. SWAP decomposition)
	N1Q       int `json:"n1Q"`       // one-qubit gates executed
	Depth2Q   int `json:"depth2Q"`   // parallel two-qubit layers (router stages on RAA)
	N1QLayers int `json:"n1QLayers"` // parallel one-qubit layers

	SwapCount  int `json:"swapCount"`  // SWAPs inserted during routing
	AddedCNOTs int `json:"addedCNOTs"` // CNOT overhead of SWAP insertion (3 per SWAP)

	ExecutionTime float64 `json:"executionTime"` // wall-clock schedule length in seconds
	MoveStages    int     `json:"moveStages"`    // movement stages (RAA only)
	TotalMoveDist float64 `json:"totalMoveDist"` // total atom movement in meters (RAA only)
	AvgMoveDist   float64 `json:"avgMoveDist"`   // average movement distance per stage in meters
	CoolingEvents int     `json:"coolingEvents"` // AOD cooling swaps performed
	Overlaps      int     `json:"overlaps"`      // gates rejected from a stage by the overlap rule

	CompileTime time.Duration      `json:"compileTimeNs"`
	Fidelity    fidelity.Breakdown `json:"fidelity"`

	// Passes is the per-pass instrumentation of the compile pipeline, in
	// execution order. Empty for compilers that do not run as a pass
	// pipeline (the fixed-array baselines in internal/arch).
	Passes []PassTiming `json:"passes,omitempty"`
}

// PassTiming is one pipeline pass's instrumentation record: wall time plus
// the gate/move totals materialised once the pass finished. Gates counts the
// gates of the most concrete circuit representation produced so far (source,
// routed, or scheduled), so the delta between consecutive entries shows what
// each pass added.
type PassTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Gates   int     `json:"gates"`
	Moves   int     `json:"moves"`
}

// FidelityTotal is shorthand for the total fidelity product.
func (c Compiled) FidelityTotal() float64 { return c.Fidelity.Total() }

// GeoMean returns the geometric mean of vals, skipping non-positive entries
// (the paper's GMean columns clamp zeros the same way).
func GeoMean(vals []float64) float64 {
	prod := 1.0
	n := 0
	for _, v := range vals {
		if v > 0 {
			prod *= v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}
