package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"atomique/internal/fidelity"
)

func TestGeoMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{4, 9}, 6},
		{[]float64{1, 1, 1}, 1},
		{[]float64{8}, 8},
		{nil, 0},
		{[]float64{0, 0}, 0},
		{[]float64{0, 4, 9}, 6}, // zeros skipped like the paper's GMean
	}
	for _, tc := range cases {
		if got := GeoMean(tc.in); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("GeoMean(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// Property: GeoMean lies between min and max of the positive entries.
func TestGeoMeanBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		vals := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range vals {
			vals[i] = rng.Float64() + 1e-6
			if vals[i] < lo {
				lo = vals[i]
			}
			if vals[i] > hi {
				hi = vals[i]
			}
		}
		g := GeoMean(vals)
		return g >= lo-1e-12 && g <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFidelityTotal(t *testing.T) {
	c := Compiled{Fidelity: fidelity.Breakdown{
		OneQubit: 0.5, TwoQubit: 0.5, Transfer: 1,
		MoveHeating: 1, MoveCooling: 1, MoveLoss: 1, MoveDeco: 1,
	}}
	if got := c.FidelityTotal(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("FidelityTotal = %v, want 0.25", got)
	}
}
