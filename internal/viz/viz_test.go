package viz

import (
	"strings"
	"testing"

	"atomique/internal/bench"
	"atomique/internal/core"
	"atomique/internal/hardware"
)

func compileSmall(t *testing.T) (hardware.Config, *core.Result) {
	t.Helper()
	cfg := hardware.SquareConfig(4, 2)
	res, err := core.Compile(cfg, bench.QAOARegular(10, 3, 1), core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return cfg, res
}

func TestPlacementShowsAllArrays(t *testing.T) {
	cfg, res := compileSmall(t)
	var b strings.Builder
	Placement(&b, cfg, res)
	out := b.String()
	for _, want := range []string{"SLM (4x4):", "AOD0 (4x4):", "AOD1 (4x4):", ".."} {
		if !strings.Contains(out, want) {
			t.Errorf("placement missing %q:\n%s", want, out)
		}
	}
	// Every occupied slot appears exactly as many times as atoms (10 total).
	occupied := strings.Count(out, "\n") // rough sanity only
	if occupied < 12 {
		t.Errorf("placement suspiciously short:\n%s", out)
	}
}

func TestStageRendering(t *testing.T) {
	cfg, res := compileSmall(t)
	var b strings.Builder
	Stage(&b, cfg, res, 0)
	out := b.String()
	if !strings.Contains(out, "stage 0:") {
		t.Errorf("stage header missing:\n%s", out)
	}
	// A compiled QAOA stage must fire at least one Rydberg pulse somewhere.
	var all strings.Builder
	Schedule(&all, cfg, res)
	if !strings.Contains(all.String(), "rydberg:") {
		t.Errorf("no rydberg lines in schedule render")
	}
	if !strings.Contains(all.String(), "move AOD") {
		t.Errorf("no movement lines in schedule render")
	}
	// Out-of-range stage reports gracefully.
	var oob strings.Builder
	Stage(&oob, cfg, res, 9999)
	if !strings.Contains(oob.String(), "out of range") {
		t.Errorf("out-of-range stage not reported")
	}
}

func TestSummaryHistogram(t *testing.T) {
	cfg, res := compileSmall(t)
	var b strings.Builder
	Summary(&b, cfg, res)
	out := b.String()
	if !strings.Contains(out, "gates/stage:") {
		t.Errorf("summary histogram missing:\n%s", out)
	}
	if !strings.Contains(out, "max parallel:") {
		t.Errorf("summary header missing:\n%s", out)
	}
}
