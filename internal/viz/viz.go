// Package viz renders RAA machine states and schedules as ASCII diagrams:
// the trap-array occupancy after placement and, stage by stage, which AOD
// rows/columns move where and which atom pairs interact. Used by the CLI's
// -viz flag and handy when debugging placements.
package viz

import (
	"fmt"
	"io"
	"strings"

	"atomique/internal/core"
	"atomique/internal/hardware"
)

// Placement draws each array as a grid: occupied sites show the slot index
// (mod 100) of the atom parked there, empty traps show "..".
func Placement(w io.Writer, cfg hardware.Config, res *core.Result) {
	occ := map[hardware.Site]int{}
	for slot, s := range res.SiteOf {
		occ[s] = slot
	}
	for a := 0; a < cfg.NumArrays(); a++ {
		spec := cfg.Array(a)
		name := "SLM"
		if a > 0 {
			name = fmt.Sprintf("AOD%d", a-1)
		}
		fmt.Fprintf(w, "%s (%dx%d):\n", name, spec.Rows, spec.Cols)
		for r := 0; r < spec.Rows; r++ {
			var row []string
			for c := 0; c < spec.Cols; c++ {
				if slot, ok := occ[hardware.Site{Array: a, Row: r, Col: c}]; ok {
					row = append(row, fmt.Sprintf("%02d", slot%100))
				} else {
					row = append(row, "..")
				}
			}
			fmt.Fprintln(w, " "+strings.Join(row, " "))
		}
	}
}

// Stage describes one schedule stage in prose-diagram form: the 1Q batch,
// each row/column translation (in site-pitch units), and the gate pairs.
func Stage(w io.Writer, cfg hardware.Config, res *core.Result, idx int) {
	if idx < 0 || idx >= len(res.Schedule.Stages) {
		fmt.Fprintf(w, "stage %d out of range (0..%d)\n", idx, len(res.Schedule.Stages)-1)
		return
	}
	st := res.Schedule.Stages[idx]
	pitch := cfg.Params.AtomDistance
	fmt.Fprintf(w, "stage %d:\n", idx)
	if len(st.OneQ) > 0 {
		names := make([]string, 0, len(st.OneQ))
		for _, g := range st.OneQ {
			names = append(names, fmt.Sprintf("%s@%s", g.Op, res.SiteOf[g.SlotA]))
		}
		fmt.Fprintf(w, "  raman: %s\n", strings.Join(names, " "))
	}
	for _, m := range st.Moves {
		axis := "col"
		if m.IsRow {
			axis = "row"
		}
		fmt.Fprintf(w, "  move AOD%d %s %d: %+.2f -> %+.2f pitches (%.1f um)\n",
			m.Array-1, axis, m.Index, m.From/pitch, m.To/pitch, m.Distance()*1e6)
	}
	for _, g := range st.Gates {
		fmt.Fprintf(w, "  rydberg: %s %s <-> %s\n", g.Op,
			res.SiteOf[g.SlotA], res.SiteOf[g.SlotB])
	}
}

// Schedule renders every stage.
func Schedule(w io.Writer, cfg hardware.Config, res *core.Result) {
	for i := range res.Schedule.Stages {
		Stage(w, cfg, res, i)
	}
}

// Summary prints a one-screen digest: placement plus per-stage parallelism
// histogram.
func Summary(w io.Writer, cfg hardware.Config, res *core.Result) {
	Placement(w, cfg, res)
	fmt.Fprintf(w, "\nstages: %d   2Q gates: %d   max parallel: %d\n",
		len(res.Schedule.Stages), res.Schedule.NumGates(), res.Schedule.MaxParallelism())
	hist := map[int]int{}
	for _, st := range res.Schedule.Stages {
		hist[len(st.Gates)]++
	}
	for k := 0; k <= res.Schedule.MaxParallelism(); k++ {
		if hist[k] == 0 {
			continue
		}
		bar := strings.Repeat("#", min(hist[k], 60))
		fmt.Fprintf(w, "  %2d gates/stage: %4d %s\n", k, hist[k], bar)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
