package arch

import (
	"testing"

	"atomique/internal/bench"
	"atomique/internal/circuit"
)

func TestBaselinesCompileGHZ(t *testing.T) {
	c := bench.GHZ(16)
	baselines := []Arch{Superconducting(), BakerLongRange(c.N), FAARectangular(c.N), FAATriangular(c.N)}
	for _, a := range baselines {
		m, err := Compile(a, c, 1)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if m.N2Q < c.Num2Q() {
			t.Errorf("%s executed %d 2Q < source %d", a.Name, m.N2Q, c.Num2Q())
		}
		if m.FidelityTotal() <= 0 || m.FidelityTotal() > 1 {
			t.Errorf("%s fidelity %v out of range", a.Name, m.FidelityTotal())
		}
		if m.Depth2Q == 0 {
			t.Errorf("%s zero depth", a.Name)
		}
	}
}

func TestZZDecompositionOnlyOnSuperconducting(t *testing.T) {
	c := circuit.New(4)
	c.ZZ(0, 1, 0.3)
	c.ZZ(2, 3, 0.3)

	sc, err := Compile(Superconducting(), c, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Each ZZ becomes 2 CX (plus any swap overhead).
	if sc.N2Q < 4 {
		t.Errorf("superconducting 2Q = %d, want >= 4 (ZZ decomposed)", sc.N2Q)
	}
	faa, err := Compile(FAARectangular(4), c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if faa.N2Q-3*faa.SwapCount != 2 {
		t.Errorf("FAA native ZZ count = %d, want 2", faa.N2Q-3*faa.SwapCount)
	}
}

func TestTopologyRichnessOrdering(t *testing.T) {
	// On a connectivity-heavy workload, triangular and long-range should not
	// need more swaps than rectangular.
	c := bench.QAOARandom(25, 0.5, 3)
	rect, err := Compile(FAARectangular(c.N), c, 7)
	if err != nil {
		t.Fatal(err)
	}
	tri, err := Compile(FAATriangular(c.N), c, 7)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := Compile(BakerLongRange(c.N), c, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tri.SwapCount > rect.SwapCount {
		t.Errorf("triangular swaps %d > rectangular %d", tri.SwapCount, rect.SwapCount)
	}
	if lr.SwapCount > rect.SwapCount {
		t.Errorf("long-range swaps %d > rectangular %d", lr.SwapCount, rect.SwapCount)
	}
}

func TestSuperconductingDecoherenceDominates(t *testing.T) {
	// Same gate fidelities, but superconducting coherence is ~2000x shorter:
	// on a deep circuit its fidelity must be far below FAA's.
	c := bench.QSimRandom(20, 10, 0.5, 6)
	sc, err := Compile(Superconducting(), c, 1)
	if err != nil {
		t.Fatal(err)
	}
	faa, err := Compile(FAARectangular(c.N), c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sc.FidelityTotal() >= faa.FidelityTotal() {
		t.Errorf("superconducting fidelity %v >= FAA %v",
			sc.FidelityTotal(), faa.FidelityTotal())
	}
}

func TestCompileRejectsOversized(t *testing.T) {
	c := circuit.New(200)
	if _, err := Compile(Superconducting(), c, 1); err == nil {
		t.Errorf("200-qubit circuit accepted on 127-qubit device")
	}
}

func TestGridFor(t *testing.T) {
	cases := []struct{ n, wantMin int }{{1, 1}, {10, 10}, {100, 100}, {17, 17}}
	for _, tc := range cases {
		r, c := gridFor(tc.n)
		if r*c < tc.n {
			t.Errorf("gridFor(%d) = %dx%d too small", tc.n, r, c)
		}
		if r*c > tc.n+r {
			t.Errorf("gridFor(%d) = %dx%d too generous", tc.n, r, c)
		}
	}
}
