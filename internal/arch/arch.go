// Package arch implements the four fixed-topology baseline architectures of
// the paper's evaluation (Fig 13): IBM superconducting (127-qubit heavy-hex),
// Baker long-range FAA (interaction reach 4 r_b over a 2.5 r_b grid), FAA
// with rectangular topology, and FAA with triangular topology. Each baseline
// routes with SABRE (Qiskit optimisation level 3 in the paper) and is scored
// with the same fidelity model as Atomique, minus movement terms.
package arch

import (
	"fmt"
	"math"

	"atomique/internal/circuit"
	"atomique/internal/fidelity"
	"atomique/internal/graphs"
	"atomique/internal/hardware"
	"atomique/internal/metrics"
	"atomique/internal/sabre"
)

// Arch is a fixed-coupling quantum architecture.
type Arch struct {
	Name     string
	Coupling *graphs.Coupling
	Params   hardware.Params
	// DecomposeZZ replaces each ZZ interaction with two CX gates before
	// routing (superconducting hardware has no native ZZ; neutral-atom
	// architectures execute it in one Rydberg interaction).
	DecomposeZZ bool
}

// Superconducting returns the IBM Washington baseline: 127-qubit heavy-hex
// with Table I superconducting parameters.
func Superconducting() Arch {
	return Arch{
		Name:        "Superconducting",
		Coupling:    graphs.HeavyHex(127),
		Params:      hardware.Superconducting(),
		DecomposeZZ: true,
	}
}

// gridFor returns near-square grid dimensions with rows*cols >= n,
// equalising baseline qubit counts with the circuit as the paper does.
func gridFor(n int) (rows, cols int) {
	rows = int(math.Sqrt(float64(n)))
	if rows < 1 {
		rows = 1
	}
	cols = (n + rows - 1) / rows
	return rows, cols
}

// FAARectangular returns a fixed rectangular atom array sized for n qubits.
func FAARectangular(n int) Arch {
	r, c := gridFor(n)
	return Arch{
		Name:     "FAA-Rectangular",
		Coupling: graphs.Grid(r, c),
		Params:   hardware.NeutralAtom(),
	}
}

// FAATriangular returns a fixed triangular atom array sized for n qubits
// (the Geyser topology).
func FAATriangular(n int) Arch {
	r, c := gridFor(n)
	return Arch{
		Name:     "FAA-Triangular",
		Coupling: graphs.Triangular(r, c),
		Params:   hardware.NeutralAtom(),
	}
}

// BakerLongRange returns the Baker et al. fixed array with long-range
// interactions: sites at 2.5 r_b pitch, interaction reach 4 r_b = 1.6 sites,
// which couples rook and diagonal neighbours.
func BakerLongRange(n int) Arch {
	r, c := gridFor(n)
	return Arch{
		Name:     "Baker-Long-Range",
		Coupling: graphs.LongRange(r, c, 1.6),
		Params:   hardware.NeutralAtom(),
	}
}

// Compile routes circ onto the architecture and returns the evaluation
// metrics (gate counts, 2Q depth, added CNOTs, execution time, fidelity).
func Compile(a Arch, circ *circuit.Circuit, seed int64) (metrics.Compiled, error) {
	m, _, err := CompileRouted(a, circ, seed)
	return m, err
}

// CompileRouted is Compile exposing the underlying routing result — the
// physical circuit over device qubits plus the final logical-to-physical
// mapping — which is the execution witness the simulator-backed backend
// verification replays. ZZ interactions appear CX-decomposed in the routed
// circuit when the architecture lacks a native ZZ.
func CompileRouted(a Arch, circ *circuit.Circuit, seed int64) (metrics.Compiled, sabre.Result, error) {
	if circ.N > a.Coupling.N {
		return metrics.Compiled{}, sabre.Result{}, fmt.Errorf(
			"arch: circuit needs %d qubits, %s has %d", circ.N, a.Name, a.Coupling.N)
	}
	prepared := circ
	if a.DecomposeZZ {
		prepared = decomposeZZ(circ)
	}
	res := sabre.Route(prepared, a.Coupling, sabre.Options{Seed: seed})
	routed := res.Routed
	depth2Q := routed.Depth2Q()
	oneQLayers := routed.Num1QLayers()
	static := fidelity.Static{
		NQubits:   circ.N,
		N1Q:       routed.Num1Q(),
		N1QLayers: oneQLayers,
		N2Q:       routed.Num2Q(),
		Depth2Q:   depth2Q,
	}
	bd := fidelity.Evaluate(a.Params, static, fidelity.MovementTrace{})
	return metrics.Compiled{
		Arch:          a.Name,
		NQubits:       circ.N,
		N2Q:           routed.Num2Q(),
		N1Q:           routed.Num1Q(),
		Depth2Q:       depth2Q,
		N1QLayers:     oneQLayers,
		SwapCount:     res.SwapCount,
		AddedCNOTs:    res.AddedCNOTs(),
		ExecutionTime: float64(depth2Q)*a.Params.Time2Q + float64(oneQLayers)*a.Params.Time1Q,
		Fidelity:      bd,
	}, res, nil
}

// decomposeZZ lowers each ZZ interaction to CX·RZ·CX for hardware without a
// native ZZ gate.
func decomposeZZ(c *circuit.Circuit) *circuit.Circuit {
	out := circuit.New(c.N)
	for _, g := range c.Gates {
		if g.Op == circuit.OpZZ {
			out.CX(g.Q0, g.Q1)
			out.RZ(g.Q1, g.Param)
			out.CX(g.Q0, g.Q1)
			continue
		}
		out.Add(g)
	}
	return out
}
