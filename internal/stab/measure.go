package stab

import "math/bits"

// gExp returns the exponent of i in W(x1,z1)·W(x2,z2) = i^g · W(x1^x2, z1^z2)
// — the Aaronson–Gottesman phase function, with (x1,z1) the operator being
// multiplied in from the left and (x2,z2) the accumulator. All arguments are
// single bits.
func gExp(x1, z1, x2, z2 uint64) int {
	switch {
	case x1 == 1 && z1 == 1: // Y·
		return int(z2) - int(x2)
	case x1 == 1: // X·
		if z2 == 1 {
			return 2*int(x2) - 1
		}
		return 0
	case z1 == 1: // Z·
		if x2 == 1 {
			return 1 - 2*int(z2)
		}
		return 0
	default:
		return 0
	}
}

// foldRow multiplies tableau row `row` into the qubit-packed scratch Pauli
// (xs, zs) and returns the updated i-exponent (unnormalised; reduce mod 4 at
// the end of the fold).
func (t *Tableau) foldRow(row int, xs, zs []uint64, phase int) int {
	w, b := row>>6, uint(row&63)
	if t.r[w]>>b&1 == 1 {
		phase += 2
	}
	for q := 0; q < t.n; q++ {
		x1 := t.x[q][w] >> b & 1
		z1 := t.z[q][w] >> b & 1
		if x1 == 0 && z1 == 0 {
			continue
		}
		qw, qb := q>>6, uint(q&63)
		phase += gExp(x1, z1, xs[qw]>>qb&1, zs[qw]>>qb&1)
		xs[qw] ^= x1 << qb
		zs[qw] ^= z1 << qb
	}
	return phase
}

// multiplyPivotInto left-multiplies Pauli row p into every row whose bit is
// set in mask m (which must exclude p itself), with sign bookkeeping done for
// all rows at once: two bitplanes s0/s1 accumulate each target row's phase
// sum mod 4 as the columns stream by, and the CHP rowsum identity guarantees
// the sum lands on 0 or 2, so the new sign is r_target ⊕ r_p ⊕ s1.
func (t *Tableau) multiplyPivotInto(p int, m []uint64) {
	s0, s1 := t.s0, t.s1
	for w := 0; w < t.w; w++ {
		s0[w], s1[w] = 0, 0
	}
	pw, pb := p>>6, uint(p&63)
	for q := 0; q < t.n; q++ {
		xq, zq := t.x[q], t.z[q]
		a := xq[pw]>>pb&1 == 1
		b := zq[pw]>>pb&1 == 1
		if !a && !b {
			continue
		}
		for w := 0; w < t.w; w++ {
			mw := m[w]
			if mw == 0 {
				continue
			}
			X, Z := xq[w], zq[w]
			// g(pivot, target) = +1 on `plus` rows, -1 on `minus` rows.
			var plus, minus uint64
			switch {
			case a && b: // pivot Y
				plus, minus = Z&^X, X&^Z
			case a: // pivot X
				plus, minus = X&Z, Z&^X
			default: // pivot Z
				plus, minus = X&^Z, X&Z
			}
			plus &= mw
			minus &= mw
			carry := s0[w] & plus // += 1 (mod 4)
			s0[w] ^= plus
			s1[w] ^= carry
			s1[w] ^= minus // += 3 ≡ -1 (mod 4): +2 then +1
			carry = s0[w] & minus
			s0[w] ^= minus
			s1[w] ^= carry
			if a {
				xq[w] ^= mw
			}
			if b {
				zq[w] ^= mw
			}
		}
	}
	rp := t.r[pw]>>pb&1 == 1
	for w := 0; w < t.w; w++ {
		if rp {
			t.r[w] ^= m[w]
		}
		t.r[w] ^= s1[w] & m[w]
	}
}

// copyRow overwrites row dst with row src (all columns plus the sign).
func (t *Tableau) copyRow(dst, src int) {
	sw, sb := src>>6, uint(src&63)
	dw, db := dst>>6, uint(dst&63)
	set := func(v []uint64, bit uint64) {
		v[dw] = v[dw]&^(1<<db) | bit<<db
	}
	for q := 0; q < t.n; q++ {
		set(t.x[q], t.x[q][sw]>>sb&1)
		set(t.z[q], t.z[q][sw]>>sb&1)
	}
	set(t.r, t.r[sw]>>sb&1)
}

// zeroRow clears row `row` in every column and the sign vector.
func (t *Tableau) zeroRow(row int) {
	w, b := row>>6, uint(row&63)
	mask := ^(uint64(1) << b)
	for q := 0; q < t.n; q++ {
		t.x[q][w] &= mask
		t.z[q][w] &= mask
	}
	t.r[w] &= mask
}

// randomPivot returns the lowest stabilizer row with an X component on qubit
// q, or -1 when the Z_q measurement is deterministic.
func (t *Tableau) randomPivot(q int) int {
	xq := t.x[q]
	for w := 0; w < t.w; w++ {
		if v := xq[w] & t.stabMask[w]; v != 0 {
			return w<<6 + bits.TrailingZeros64(v)
		}
	}
	return -1
}

// deterministicZ returns the predetermined Z_q outcome: the product of the
// stabilizer rows selected by the destabilizer syndrome is ±Z_q, and the sign
// is the outcome.
func (t *Tableau) deterministicZ(q int) int {
	xs, zs := t.px, t.pz
	for w := range xs {
		xs[w], zs[w] = 0, 0
	}
	phase := 0
	xq := t.x[q]
	for i := 0; i < t.n; i++ {
		if xq[i>>6]>>uint(i&63)&1 == 1 {
			phase = t.foldRow(i+t.n, xs, zs, phase)
		}
	}
	if ((phase%4)+4)%4 == 2 {
		return 1
	}
	return 0
}

// collapseZ performs the random-outcome collapse around pivot row p.
func (t *Tableau) collapseZ(q, p, outcome int) {
	m := t.mbuf
	xq := t.x[q]
	copy(m, xq)
	m[p>>6] &^= 1 << uint(p&63)
	t.multiplyPivotInto(p, m)
	t.copyRow(p-t.n, p)
	t.zeroRow(p)
	setBit(t.z[q], p)
	if outcome == 1 {
		setBit(t.r, p)
	}
}

// MeasureZ measures qubit q in the computational basis, collapsing the state.
// When the outcome is random (probability ½ each way), coin() supplies the
// outcome bit; when it is determined by the stabilizer group, coin is not
// called. It returns the outcome and whether it was random.
func (t *Tableau) MeasureZ(q int, coin func() bool) (outcome int, random bool) {
	p := t.randomPivot(q)
	if p < 0 {
		return t.deterministicZ(q), false
	}
	outcome = 0
	if coin() {
		outcome = 1
	}
	t.collapseZ(q, p, outcome)
	return outcome, true
}

// ProjectZ post-selects qubit q onto the given outcome, returning that
// outcome's probability at this point: 0.5 for a random measurement (the
// state collapses onto the requested branch), 1 for a deterministic match,
// and 0 for a deterministic mismatch (the state is left unchanged).
func (t *Tableau) ProjectZ(q, outcome int) float64 {
	p := t.randomPivot(q)
	if p < 0 {
		if t.deterministicZ(q) == outcome {
			return 1
		}
		return 0
	}
	t.collapseZ(q, p, outcome)
	return 0.5
}

// Expectation returns ⟨P⟩ for a Hermitian Pauli (Phase 0 or 2): +1 or -1 when
// P is, up to sign, in the stabilizer group, and 0 when the expectation is
// indefinite (P anticommutes with some stabilizer). It allocates its own
// scratch, so concurrent calls on a shared read-only tableau are safe.
func (t *Tableau) Expectation(p *Pauli) int {
	if p.n != t.n {
		panic("stab: Pauli width mismatch")
	}
	// Row syndrome: bit i set ⇔ P anticommutes with generator row i.
	syn := make([]uint64, t.w)
	for q := 0; q < t.n; q++ {
		qw, qb := q>>6, uint(q&63)
		if p.X[qw]>>qb&1 == 1 {
			for w := 0; w < t.w; w++ {
				syn[w] ^= t.z[q][w]
			}
		}
		if p.Z[qw]>>qb&1 == 1 {
			for w := 0; w < t.w; w++ {
				syn[w] ^= t.x[q][w]
			}
		}
	}
	for w := 0; w < t.w; w++ {
		if syn[w]&t.stabMask[w] != 0 {
			return 0 // anticommutes with a stabilizer: ⟨P⟩ = 0
		}
	}
	// P commutes with the whole group, so P = ± Π stab_i over the rows the
	// destabilizer syndrome selects. Fold that product and compare signs.
	nw := (t.n + 63) / 64
	xs, zs := make([]uint64, nw), make([]uint64, nw)
	phase := 0
	for i := 0; i < t.n; i++ {
		if syn[i>>6]>>uint(i&63)&1 == 1 {
			phase = t.foldRow(i+t.n, xs, zs, phase)
		}
	}
	for w := 0; w < nw; w++ {
		if xs[w] != p.X[w] || zs[w] != p.Z[w] {
			return 0 // not in the group (impossible for a maximal tableau)
		}
	}
	if uint8(((phase%4)+4)%4) == p.Phase {
		return 1
	}
	return -1
}
