// Package stab is an Aaronson–Gottesman stabilizer tableau simulator over the
// circuit IR: Clifford circuits and Pauli-error trajectories in O(n²) time and
// O(n²/8) bytes instead of the dense simulator's O(2^n), which is what lets
// verification and noise replay run at paper-scale widths (hundreds to
// thousands of qubits).
//
// The tableau is stored column-major: for each qubit q, X(q) and Z(q) are
// packed bitvectors over the 2n generator rows (destabilizers 0..n-1, then
// stabilizers n..2n-1), with the sign vector r packed the same way. Every
// Clifford gate is then a handful of word-wide boolean operations per qubit
// column touched — the CHP update rules vectorized over all rows at once.
//
// Gates outside the Clifford group are rejected with a structured
// *NonCliffordError, which is the signal the automatic dispatcher uses to
// fall back to the dense engine.
package stab

import (
	"fmt"

	"atomique/internal/circuit"
)

// MaxQubits bounds tableau width; memory grows as n²/4 bytes (8 MiB at the
// cap), and the cap is far above every workload in this repository.
const MaxQubits = 4096

// NonCliffordError reports a gate the stabilizer formalism cannot express:
// a T gate, or a parametric rotation at a non-multiple of π/2.
type NonCliffordError struct {
	Gate  circuit.Gate
	Index int // position in the gate stream; -1 when not applicable
}

func (e *NonCliffordError) Error() string {
	if e.Index >= 0 {
		return fmt.Sprintf("stab: gate %d (%v) is not Clifford", e.Index, e.Gate)
	}
	return fmt.Sprintf("stab: gate %v is not Clifford", e.Gate)
}

// Tableau is the packed stabilizer tableau of an n-qubit state. The zero
// value is unusable; construct with New. Methods that mutate or measure use
// internal scratch buffers and are not safe for concurrent use; concurrent
// trajectory workers share a finished tableau read-only through Frame, which
// carries its own scratch.
type Tableau struct {
	n int // qubits
	w int // words per row-indexed bitvector: ceil(2n/64)

	// x[q][w], z[q][w]: bit i of word w is row (w*64+i)'s X/Z component on
	// qubit q. All columns share one backing array for locality.
	x, z [][]uint64
	r    []uint64 // row signs: bit set ⇒ the generator carries -1

	stabMask []uint64 // bits of the stabilizer rows n..2n-1

	// measurement scratch (row-indexed): phase bitplanes + target mask
	s0, s1, mbuf []uint64
	// fold scratch (qubit-indexed)
	px, pz []uint64
}

// New returns the tableau of |0…0⟩ over n qubits.
func New(n int) (*Tableau, error) {
	if n <= 0 || n > MaxQubits {
		return nil, fmt.Errorf("stab: unsupported qubit count %d (want 1..%d)", n, MaxQubits)
	}
	w := (2*n + 63) / 64
	nw := (n + 63) / 64
	t := &Tableau{
		n: n, w: w,
		x: make([][]uint64, n), z: make([][]uint64, n),
		r:        make([]uint64, w),
		stabMask: make([]uint64, w),
		s0:       make([]uint64, w), s1: make([]uint64, w), mbuf: make([]uint64, w),
		px: make([]uint64, nw), pz: make([]uint64, nw),
	}
	backing := make([]uint64, 2*n*w)
	for q := 0; q < n; q++ {
		t.x[q] = backing[2*q*w : (2*q+1)*w]
		t.z[q] = backing[(2*q+1)*w : (2*q+2)*w]
		setBit(t.x[q], q)   // destabilizer q = X_q
		setBit(t.z[q], n+q) // stabilizer n+q = Z_q
	}
	for i := n; i < 2*n; i++ {
		setBit(t.stabMask, i)
	}
	return t, nil
}

// N returns the qubit count.
func (t *Tableau) N() int { return t.n }

func setBit(v []uint64, i int)      { v[i>>6] |= 1 << uint(i&63) }
func getBit(v []uint64, i int) bool { return v[i>>6]>>uint(i&63)&1 == 1 }

// --- primitive Clifford updates (word-wide over all 2n rows) ---

func (t *Tableau) hGate(q int) {
	x, z := t.x[q], t.z[q]
	for w := 0; w < t.w; w++ {
		t.r[w] ^= x[w] & z[w]
		x[w], z[w] = z[w], x[w]
	}
}

func (t *Tableau) sGate(q int) {
	x, z := t.x[q], t.z[q]
	for w := 0; w < t.w; w++ {
		t.r[w] ^= x[w] & z[w]
		z[w] ^= x[w]
	}
}

func (t *Tableau) sdgGate(q int) {
	x, z := t.x[q], t.z[q]
	for w := 0; w < t.w; w++ {
		t.r[w] ^= x[w] &^ z[w]
		z[w] ^= x[w]
	}
}

func (t *Tableau) xGate(q int) {
	z := t.z[q]
	for w := 0; w < t.w; w++ {
		t.r[w] ^= z[w]
	}
}

func (t *Tableau) yGate(q int) {
	x, z := t.x[q], t.z[q]
	for w := 0; w < t.w; w++ {
		t.r[w] ^= x[w] ^ z[w]
	}
}

func (t *Tableau) zGate(q int) {
	x := t.x[q]
	for w := 0; w < t.w; w++ {
		t.r[w] ^= x[w]
	}
}

func (t *Tableau) cxGate(c, tg int) {
	xc, zc := t.x[c], t.z[c]
	xt, zt := t.x[tg], t.z[tg]
	for w := 0; w < t.w; w++ {
		t.r[w] ^= xc[w] & zt[w] & ^(xt[w] ^ zc[w])
		xt[w] ^= xc[w]
		zc[w] ^= zt[w]
	}
}

func (t *Tableau) czGate(a, b int) {
	xa, za := t.x[a], t.z[a]
	xb, zb := t.x[b], t.z[b]
	for w := 0; w < t.w; w++ {
		t.r[w] ^= xa[w] & xb[w] & (za[w] ^ zb[w])
		za[w] ^= xb[w]
		zb[w] ^= xa[w]
	}
}

func (t *Tableau) swapGate(a, b int) {
	t.x[a], t.x[b] = t.x[b], t.x[a]
	t.z[a], t.z[b] = t.z[b], t.z[a]
}

// ApplyGate applies one IR gate, decomposing Clifford-angle rotations into
// the primitive updates. It returns a *NonCliffordError (Index -1) for any
// gate outside the Clifford group; the tableau is unchanged on error.
func (t *Tableau) ApplyGate(g circuit.Gate) error {
	switch g.Op {
	case circuit.OpH:
		t.hGate(g.Q0)
	case circuit.OpX:
		t.xGate(g.Q0)
	case circuit.OpY:
		t.yGate(g.Q0)
	case circuit.OpZ:
		t.zGate(g.Q0)
	case circuit.OpS:
		t.sGate(g.Q0)
	case circuit.OpRZ:
		k, ok := circuit.CliffordQuarterTurns(g.Param)
		if !ok {
			return &NonCliffordError{Gate: g, Index: -1}
		}
		t.rzQuarter(g.Q0, k)
	case circuit.OpRX:
		k, ok := circuit.CliffordQuarterTurns(g.Param)
		if !ok {
			return &NonCliffordError{Gate: g, Index: -1}
		}
		// RX(θ) = H · RZ(θ) · H up to global phase.
		switch k {
		case 1, 3:
			t.hGate(g.Q0)
			t.rzQuarter(g.Q0, k)
			t.hGate(g.Q0)
		case 2:
			t.xGate(g.Q0)
		}
	case circuit.OpRY, circuit.OpU: // the dense sim models U as RY(θ)
		k, ok := circuit.CliffordQuarterTurns(g.Param)
		if !ok {
			return &NonCliffordError{Gate: g, Index: -1}
		}
		// RY(θ) = S · RX(θ) · S† up to global phase.
		switch k {
		case 1, 3:
			t.sdgGate(g.Q0)
			t.hGate(g.Q0)
			t.rzQuarter(g.Q0, k)
			t.hGate(g.Q0)
			t.sGate(g.Q0)
		case 2:
			t.yGate(g.Q0)
		}
	case circuit.OpCX:
		t.cxGate(g.Q0, g.Q1)
	case circuit.OpCZ:
		t.czGate(g.Q0, g.Q1)
	case circuit.OpSWAP:
		t.swapGate(g.Q0, g.Q1)
	case circuit.OpZZ:
		k, ok := circuit.CliffordQuarterTurns(g.Param)
		if !ok {
			return &NonCliffordError{Gate: g, Index: -1}
		}
		// ZZ(π/2) = (S⊗S)·CZ and ZZ(π) = Z⊗Z, all up to global phase.
		switch k {
		case 1:
			t.czGate(g.Q0, g.Q1)
			t.sGate(g.Q0)
			t.sGate(g.Q1)
		case 2:
			t.zGate(g.Q0)
			t.zGate(g.Q1)
		case 3:
			t.czGate(g.Q0, g.Q1)
			t.sdgGate(g.Q0)
			t.sdgGate(g.Q1)
		}
	default: // OpT and anything unknown
		return &NonCliffordError{Gate: g, Index: -1}
	}
	return nil
}

// rzQuarter applies RZ at k quarter-turns (k in 0..3).
func (t *Tableau) rzQuarter(q, k int) {
	switch k {
	case 1:
		t.sGate(q)
	case 2:
		t.zGate(q)
	case 3:
		t.sdgGate(q)
	}
}

// Run applies a gate stream in order, wrapping any rejection with the
// offending gate's stream index.
func (t *Tableau) Run(gates []circuit.Gate) error {
	for i, g := range gates {
		if err := t.ApplyGate(g); err != nil {
			err.(*NonCliffordError).Index = i
			return err
		}
	}
	return nil
}

// FromCircuit runs a whole circuit from |0…0⟩ and returns its tableau.
func FromCircuit(c *circuit.Circuit) (*Tableau, error) {
	t, err := New(c.N)
	if err != nil {
		return nil, err
	}
	if err := t.Run(c.Gates); err != nil {
		return nil, err
	}
	return t, nil
}

// Clone deep-copies the tableau.
func (t *Tableau) Clone() *Tableau {
	out, err := New(t.n)
	if err != nil {
		panic(err) // t.n was already validated
	}
	for q := 0; q < t.n; q++ {
		copy(out.x[q], t.x[q])
		copy(out.z[q], t.z[q])
	}
	copy(out.r, t.r)
	return out
}
