package stab

import "atomique/internal/circuit"

// Frame is a Pauli error frame: the qubit-packed X/Z components of a sampled
// error, propagated forward through the remaining Clifford gates by
// conjugation (signs are irrelevant — a global ±1 on the trajectory state
// never changes its overlap with the ideal state). One Frame per trajectory
// worker lets many goroutines share a single read-only final Tableau: the
// syndrome scratch lives here, not on the tableau.
type Frame struct {
	n    int
	X, Z []uint64 // over qubits
	syn  []uint64 // row-syndrome scratch sized for the owning tableau
}

// NewFrame returns an identity (error-free) frame sized for t.
func (t *Tableau) NewFrame() *Frame {
	nw := (t.n + 63) / 64
	return &Frame{n: t.n, X: make([]uint64, nw), Z: make([]uint64, nw), syn: make([]uint64, t.w)}
}

// Reset clears the frame back to the identity.
func (f *Frame) Reset() {
	for w := range f.X {
		f.X[w], f.Z[w] = 0, 0
	}
}

// InjectX/InjectY/InjectZ multiply a Pauli error on qubit q into the frame.
func (f *Frame) InjectX(q int) { f.X[q>>6] ^= 1 << uint(q&63) }
func (f *Frame) InjectZ(q int) { f.Z[q>>6] ^= 1 << uint(q&63) }
func (f *Frame) InjectY(q int) { f.InjectX(q); f.InjectZ(q) }

func (f *Frame) xBit(q int) uint64 { return f.X[q>>6] >> uint(q&63) & 1 }
func (f *Frame) zBit(q int) uint64 { return f.Z[q>>6] >> uint(q&63) & 1 }

func (f *Frame) xorX(q int, v uint64) { f.X[q>>6] ^= v << uint(q&63) }
func (f *Frame) xorZ(q int, v uint64) { f.Z[q>>6] ^= v << uint(q&63) }

func (f *Frame) swapXZ(q int) {
	x, z := f.xBit(q), f.zBit(q)
	f.xorX(q, x^z)
	f.xorZ(q, x^z)
}

// Conjugate pushes the frame through one Clifford gate (frame ← g·frame·g†,
// signs dropped). It panics on a non-Clifford gate: trajectory callers
// validate the whole witness stream with circuit.AllClifford before entering
// the per-shot loop, so a violation here is an invariant failure, not input.
func (f *Frame) Conjugate(g circuit.Gate) {
	switch g.Op {
	case circuit.OpX, circuit.OpY, circuit.OpZ:
		// Paulis commute with the frame up to sign.
	case circuit.OpH:
		f.swapXZ(g.Q0)
	case circuit.OpS:
		f.xorZ(g.Q0, f.xBit(g.Q0))
	case circuit.OpRZ:
		if quarterOdd(g) {
			f.xorZ(g.Q0, f.xBit(g.Q0))
		}
	case circuit.OpRX:
		if quarterOdd(g) {
			f.xorX(g.Q0, f.zBit(g.Q0))
		}
	case circuit.OpRY, circuit.OpU:
		if quarterOdd(g) {
			f.swapXZ(g.Q0)
		}
	case circuit.OpCX:
		f.xorX(g.Q1, f.xBit(g.Q0))
		f.xorZ(g.Q0, f.zBit(g.Q1))
	case circuit.OpCZ:
		za := f.xBit(g.Q1)
		zb := f.xBit(g.Q0)
		f.xorZ(g.Q0, za)
		f.xorZ(g.Q1, zb)
	case circuit.OpZZ:
		if quarterOdd(g) {
			d := f.xBit(g.Q0) ^ f.xBit(g.Q1)
			f.xorZ(g.Q0, d)
			f.xorZ(g.Q1, d)
		}
	case circuit.OpSWAP:
		a, b := g.Q0, g.Q1
		xa, za := f.xBit(a), f.zBit(a)
		xb, zb := f.xBit(b), f.zBit(b)
		f.xorX(a, xa^xb)
		f.xorZ(a, za^zb)
		f.xorX(b, xa^xb)
		f.xorZ(b, za^zb)
	default:
		panic(&NonCliffordError{Gate: g, Index: -1})
	}
}

// quarterOdd reports whether a rotation gate sits at an odd quarter-turn
// (±π/2) — even multiples of π/2 are Paulis or the identity, which conjugate
// a frame trivially. Panics on non-Clifford angles (see Conjugate).
func quarterOdd(g circuit.Gate) bool {
	k, ok := circuit.CliffordQuarterTurns(g.Param)
	if !ok {
		panic(&NonCliffordError{Gate: g, Index: -1})
	}
	return k == 1 || k == 3
}

// Disturbs reports whether the frame anticommutes with any stabilizer of t —
// for a Clifford trajectory, exactly the condition under which the errored
// final state is orthogonal to the ideal one (overlap 0 instead of 1).
func (t *Tableau) Disturbs(f *Frame) bool {
	if f.n != t.n {
		panic("stab: frame width mismatch")
	}
	syn := f.syn
	for w := range syn {
		syn[w] = 0
	}
	for q := 0; q < t.n; q++ {
		qw, qb := q>>6, uint(q&63)
		if f.X[qw]>>qb&1 == 1 {
			for w := 0; w < t.w; w++ {
				syn[w] ^= t.z[q][w]
			}
		}
		if f.Z[qw]>>qb&1 == 1 {
			for w := 0; w < t.w; w++ {
				syn[w] ^= t.x[q][w]
			}
		}
	}
	for w := 0; w < t.w; w++ {
		if syn[w]&t.stabMask[w] != 0 {
			return true
		}
	}
	return false
}
