package stab

import (
	"math"
	"math/rand"
	"testing"

	"atomique/internal/sim"
)

// TestSamplerVsDense validates the affine-subspace sampler against the dense
// simulator on random Clifford circuits: the support size must be 2^FreeBits,
// every draw must land inside the dense support, and the draws must be
// uniform over it (a stabilizer state's Z-basis distribution is always flat
// on its support).
func TestSamplerVsDense(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(7)
		c := randomClifford(rng, n, 12+rng.Intn(60))
		tb := mustNew(t, n)
		mustRun(t, tb, c)
		sp, err := tb.NewSampler()
		if err != nil {
			t.Fatal(err)
		}

		st := sim.MustNew(n)
		st.Run(c)
		support := make(map[int]float64)
		for i, a := range st.Amp {
			if p := real(a)*real(a) + imag(a)*imag(a); p > 1e-12 {
				support[i] = p
			}
		}
		if want := 1 << uint(sp.FreeBits()); len(support) != want {
			t.Fatalf("trial %d (n=%d): support %d outcomes, FreeBits says %d", trial, n, len(support), want)
		}

		const draws = 6000
		counts := make(map[int]int)
		coin := rand.New(rand.NewSource(int64(trial) + 1))
		buf := make([]uint64, (n+63)/64)
		for d := 0; d < draws; d++ {
			sp.Shot(buf, coin.Uint64)
			idx := int(buf[0]) & (1<<uint(n) - 1)
			if _, ok := support[idx]; !ok {
				t.Fatalf("trial %d: sampled %0*b outside the dense support", trial, n, idx)
			}
			counts[idx]++
		}
		// Uniformity: chi-square against the flat distribution.
		if len(support) > 1 {
			exp := float64(draws) / float64(len(support))
			chi2 := 0.0
			for idx := range support {
				diff := float64(counts[idx]) - exp
				chi2 += diff * diff / exp
			}
			dof := float64(len(support) - 1)
			if limit := dof + 5*math.Sqrt(2*dof) + 1; chi2 > limit {
				t.Errorf("trial %d: chi-square %.1f exceeds %.1f (dof %.0f)", trial, chi2, limit, dof)
			}
		}
	}
}

// TestSamplerDeterministicState: a computational-basis state has no free
// bits; every draw is the same outcome and consumes no randomness.
func TestSamplerDeterministicState(t *testing.T) {
	tb := mustNew(t, 5)
	// |01100⟩ via X gates (slot order: qubit index).
	tb.xGate(1)
	tb.xGate(2)
	sp, err := tb.NewSampler()
	if err != nil {
		t.Fatal(err)
	}
	if sp.FreeBits() != 0 {
		t.Fatalf("basis state has %d free bits", sp.FreeBits())
	}
	buf := make([]uint64, 1)
	sp.Shot(buf, func() uint64 {
		t.Fatal("deterministic draw consumed randomness")
		return 0
	})
	if buf[0] != 0b00110 {
		t.Fatalf("sampled %05b, want 00110", buf[0])
	}
}
