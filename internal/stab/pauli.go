package stab

import (
	"fmt"
	"strings"
)

// Pauli is a qubit-packed Pauli operator i^Phase · Π_q W(x_q, z_q), with
// W(1,1) = Y (so XZ = -iY picks up a phase). Hermitian Paulis — the only kind
// the tableau produces or consumes — have Phase 0 (+P) or 2 (−P).
type Pauli struct {
	n     int
	X, Z  []uint64 // bit q of word q/64
	Phase uint8    // exponent of i, mod 4
}

// NewPauli returns the identity on n qubits.
func NewPauli(n int) *Pauli {
	nw := (n + 63) / 64
	return &Pauli{n: n, X: make([]uint64, nw), Z: make([]uint64, nw)}
}

// N returns the qubit count.
func (p *Pauli) N() int { return p.n }

// Set assigns qubit q's component: (x,z) = (0,0) I, (1,0) X, (0,1) Z, (1,1) Y.
func (p *Pauli) Set(q int, x, z bool) {
	w, b := q>>6, uint(q&63)
	p.X[w] &^= 1 << b
	p.Z[w] &^= 1 << b
	if x {
		p.X[w] |= 1 << b
	}
	if z {
		p.Z[w] |= 1 << b
	}
}

// String renders e.g. "-XIZY" (qubit 0 first).
func (p *Pauli) String() string {
	var sb strings.Builder
	switch p.Phase {
	case 1:
		sb.WriteString("i")
	case 2:
		sb.WriteString("-")
	case 3:
		sb.WriteString("-i")
	}
	for q := 0; q < p.n; q++ {
		x, z := getBit(p.X, q), getBit(p.Z, q)
		switch {
		case x && z:
			sb.WriteByte('Y')
		case x:
			sb.WriteByte('X')
		case z:
			sb.WriteByte('Z')
		default:
			sb.WriteByte('I')
		}
	}
	return sb.String()
}

// StabilizerPauli extracts the i-th stabilizer generator (i in [0,n)) of the
// tableau as a standalone Pauli.
func (t *Tableau) StabilizerPauli(i int) *Pauli {
	if i < 0 || i >= t.n {
		panic(fmt.Sprintf("stab: generator index %d out of range [0,%d)", i, t.n))
	}
	row := t.n + i
	p := NewPauli(t.n)
	w, b := row>>6, uint(row&63)
	for q := 0; q < t.n; q++ {
		if t.x[q][w]>>b&1 == 1 {
			p.X[q>>6] |= 1 << uint(q&63)
		}
		if t.z[q][w]>>b&1 == 1 {
			p.Z[q>>6] |= 1 << uint(q&63)
		}
	}
	if t.r[w]>>b&1 == 1 {
		p.Phase = 2
	}
	return p
}
