package stab

import (
	"fmt"
	"math/bits"
)

// Sampler draws computational-basis measurement outcomes from a stabilizer
// state without collapsing or copying the tableau. The Z-basis distribution
// of a stabilizer state is uniform over an affine subspace z0 ⊕ span(basis):
// the Z-type subgroup of the stabilizer group pins m = n - k parity
// constraints b·z = s (one per ±Z^b generator), and the X-parts of the
// remaining generators span the k free directions. One Gaussian elimination
// at construction, then each draw is k coin flips and at most k+1 word-packed
// XORs — no per-shot tableau clone, no collapse, safe for concurrent use.
type Sampler struct {
	n, nw int
	z0    []uint64   // one outcome satisfying every Z-type constraint
	basis [][]uint64 // X-part basis of the stabilizer group: the free directions
}

// NewSampler builds a Sampler from the tableau's stabilizer rows. The tableau
// is read but not modified.
func (t *Tableau) NewSampler() (*Sampler, error) {
	n := t.n
	nw := (n + 63) / 64
	// Extract the stabilizer rows n..2n-1 into row-major packed Paulis with
	// an i-exponent phase (0 or 2: stabilizer generators are Hermitian ±P).
	rx := make([][]uint64, n)
	rz := make([][]uint64, n)
	ph := make([]int, n)
	backing := make([]uint64, 2*n*nw)
	for i := 0; i < n; i++ {
		rx[i] = backing[2*i*nw : (2*i+1)*nw]
		rz[i] = backing[(2*i+1)*nw : (2*i+2)*nw]
		row := n + i
		w, b := row>>6, uint(row&63)
		for q := 0; q < n; q++ {
			rx[i][q>>6] |= (t.x[q][w] >> b & 1) << uint(q&63)
			rz[i][q>>6] |= (t.z[q][w] >> b & 1) << uint(q&63)
		}
		if t.r[w]>>b&1 == 1 {
			ph[i] = 2
		}
	}

	xbit := func(v []uint64, q int) bool { return v[q>>6]>>uint(q&63)&1 == 1 }

	// Reduced row echelon over the X-parts: after this loop each pivot column
	// has exactly one row carrying it, pivot rows span the X-projection of
	// the group, and every non-pivot row is Z-type (zero X-part) with its
	// sign tracked through the Pauli products.
	used := make([]bool, n)
	var pivotRows []int
	for q := 0; q < n; q++ {
		p := -1
		for i := 0; i < n; i++ {
			if !used[i] && xbit(rx[i], q) {
				p = i
				break
			}
		}
		if p < 0 {
			continue
		}
		used[p] = true
		pivotRows = append(pivotRows, p)
		for i := 0; i < n; i++ {
			if i != p && xbit(rx[i], q) {
				ph[i] = mulPauliRow(rx[p], rz[p], rx[i], rz[i], ph[p], ph[i])
			}
		}
	}

	s := &Sampler{n: n, nw: nw, z0: make([]uint64, nw)}
	for _, p := range pivotRows {
		v := make([]uint64, nw)
		copy(v, rx[p])
		s.basis = append(s.basis, v)
	}

	// Solve the Z-type constraints b·z0 = s for one satisfying outcome:
	// reduce the (b | s) system to reduced row echelon and read z0 off the
	// pivot columns, free columns zero. The b vectors are independent
	// (independent generators never multiply to ±I), so the system is
	// always consistent.
	var cons []int
	for i := 0; i < n; i++ {
		if !used[i] {
			if m := ((ph[i] % 4) + 4) % 4; m != 0 && m != 2 {
				return nil, fmt.Errorf("stab: Z-type stabilizer with non-Hermitian phase i^%d", m)
			}
			cons = append(cons, i)
		}
	}
	taken := make([]bool, len(cons))
	type cpivot struct{ row, q int }
	var cps []cpivot
	for q := 0; q < n; q++ {
		p := -1
		for ci, i := range cons {
			if !taken[ci] && xbit(rz[i], q) {
				p = ci
				break
			}
		}
		if p < 0 {
			continue
		}
		taken[p] = true
		pi := cons[p]
		cps = append(cps, cpivot{row: pi, q: q})
		for ci, i := range cons {
			if ci != p && xbit(rz[i], q) {
				// Z-type × Z-type: no cross phase, signs just add.
				for w := 0; w < nw; w++ {
					rz[i][w] ^= rz[pi][w]
				}
				ph[i] += ph[pi]
			}
		}
	}
	// Only after the full reduction does each pivot row carry exactly its own
	// pivot column plus free columns — with free bits zero, z0's pivot bit is
	// the row's final sign.
	for _, cp := range cps {
		if ((ph[cp.row]%4)+4)%4 == 2 {
			s.z0[cp.q>>6] |= 1 << uint(cp.q&63)
		}
	}
	for ci, i := range cons {
		if !taken[ci] {
			// A dependent constraint row must have reduced to +I.
			if ((ph[i]%4)+4)%4 == 2 {
				return nil, fmt.Errorf("stab: inconsistent Z-type constraints (tableau corrupt)")
			}
		}
	}
	return s, nil
}

// mulPauliRow left-multiplies Pauli (x1,z1,phase ph1) into (x2,z2,ph2) in
// place and returns the product's i-exponent. The per-qubit Aaronson–
// Gottesman phase function gExp is evaluated word-wide: classify each qubit
// as contributing +1 or -1 and popcount the two planes.
func mulPauliRow(x1, z1, x2, z2 []uint64, ph1, ph2 int) int {
	phase := ph1 + ph2
	for w := range x1 {
		a, b, c, d := x1[w], z1[w], x2[w], z2[w]
		plus := (a & b & d &^ c) | (a &^ b & c & d) | (b &^ a & c &^ d)
		minus := (a & b & c &^ d) | (a &^ b & d &^ c) | (b &^ a & c & d)
		phase += bits.OnesCount64(plus) - bits.OnesCount64(minus)
		x2[w] ^= a
		z2[w] ^= b
	}
	return phase
}

// FreeBits returns k, the number of coin flips per draw (the affine
// subspace's dimension); every outcome has probability 2^-k.
func (s *Sampler) FreeBits() int { return len(s.basis) }

// Shot draws one outcome into dst (qubit-packed, (n+63)/64 words): z0 XOR a
// uniformly random combination of the basis vectors. rand supplies 64 fresh
// random bits per call; ceil(k/64) calls are consumed (zero when the outcome
// is deterministic). Concurrent Shots on one Sampler are safe — all state is
// read-only.
func (s *Sampler) Shot(dst []uint64, rand func() uint64) {
	copy(dst, s.z0)
	for j := 0; j < len(s.basis); j += 64 {
		coins := rand()
		end := j + 64
		if end > len(s.basis) {
			end = len(s.basis)
		}
		for b := j; b < end; b++ {
			if coins>>uint(b-j)&1 == 1 {
				for w, v := range s.basis[b] {
					dst[w] ^= v
				}
			}
		}
	}
}
