package stab

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"atomique/internal/circuit"
	"atomique/internal/sim"
)

// randomClifford returns a random Clifford circuit over n qubits: the full
// native set plus every rotation pinned to a Clifford quarter-turn.
func randomClifford(rng *rand.Rand, n, gates int) *circuit.Circuit {
	angles := []float64{math.Pi / 2, -math.Pi / 2, math.Pi}
	c := circuit.New(n)
	for i := 0; i < gates; i++ {
		switch rng.Intn(12) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.X(rng.Intn(n))
		case 2:
			c.Add1Q(circuit.OpY, rng.Intn(n), 0)
		case 3:
			c.Add1Q(circuit.OpZ, rng.Intn(n), 0)
		case 4:
			c.Add1Q(circuit.OpS, rng.Intn(n), 0)
		case 5:
			c.RZ(rng.Intn(n), angles[rng.Intn(3)])
		case 6:
			c.RX(rng.Intn(n), angles[rng.Intn(3)])
		case 7:
			c.RY(rng.Intn(n), angles[rng.Intn(3)])
		case 8, 9:
			a, b := pick2(rng, n)
			c.CX(a, b)
		case 10:
			a, b := pick2(rng, n)
			c.CZ(a, b)
		case 11:
			a, b := pick2(rng, n)
			c.ZZ(a, b, angles[rng.Intn(3)])
		}
	}
	return c
}

func pick2(rng *rand.Rand, n int) (int, int) {
	a := rng.Intn(n)
	b := rng.Intn(n - 1)
	if b >= a {
		b++
	}
	return a, b
}

func mustNew(t *testing.T, n int) *Tableau {
	t.Helper()
	tb, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func mustRun(t *testing.T, tb *Tableau, c *circuit.Circuit) {
	t.Helper()
	if err := tb.Run(c.Gates); err != nil {
		t.Fatal(err)
	}
}

func equalTableau(a, b *Tableau) bool {
	if a.n != b.n {
		return false
	}
	for q := 0; q < a.n; q++ {
		for w := 0; w < a.w; w++ {
			if a.x[q][w] != b.x[q][w] || a.z[q][w] != b.z[q][w] {
				return false
			}
		}
	}
	for w := 0; w < a.w; w++ {
		if a.r[w] != b.r[w] {
			return false
		}
	}
	return true
}

// TestCanonicalIdentities checks operator identities exactly: applying a
// sequence equal to the identity to a random stabilizer state must return the
// tableau bit-for-bit (gate updates are deterministic row maps).
func TestCanonicalIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	gate := func(op circuit.Op, qs ...int) circuit.Gate {
		g := circuit.Gate{Op: op, Q0: qs[0], Q1: -1}
		if len(qs) > 1 {
			g.Q1 = qs[1]
		}
		return g
	}
	rz := func(theta float64, q int) circuit.Gate {
		return circuit.Gate{Op: circuit.OpRZ, Q0: q, Q1: -1, Param: theta}
	}
	cases := []struct {
		name string
		seq  []circuit.Gate
	}{
		{"HH", []circuit.Gate{gate(circuit.OpH, 0), gate(circuit.OpH, 0)}},
		{"SSSS", []circuit.Gate{gate(circuit.OpS, 0), gate(circuit.OpS, 0), gate(circuit.OpS, 0), gate(circuit.OpS, 0)}},
		{"XX", []circuit.Gate{gate(circuit.OpX, 1), gate(circuit.OpX, 1)}},
		{"S-Sdg", []circuit.Gate{gate(circuit.OpS, 2), rz(-math.Pi/2, 2)}},
		{"CXCX", []circuit.Gate{gate(circuit.OpCX, 0, 3), gate(circuit.OpCX, 0, 3)}},
		{"CZCZ", []circuit.Gate{gate(circuit.OpCZ, 1, 2), gate(circuit.OpCZ, 1, 2)}},
		// CZ is symmetric: CZ(a,b) followed by CZ(b,a) is the identity.
		{"CZ-symmetry", []circuit.Gate{gate(circuit.OpCZ, 0, 4), gate(circuit.OpCZ, 4, 0)}},
		// SWAP = CX(a,b) CX(b,a) CX(a,b).
		{"SWAP-3CX", []circuit.Gate{
			gate(circuit.OpSWAP, 1, 3),
			gate(circuit.OpCX, 1, 3), gate(circuit.OpCX, 3, 1), gate(circuit.OpCX, 1, 3)}},
		// CX(c,t) = H(t) CZ(c,t) H(t).
		{"CX-HCZH", []circuit.Gate{
			gate(circuit.OpCX, 2, 0),
			gate(circuit.OpH, 0), gate(circuit.OpCZ, 2, 0), gate(circuit.OpH, 0)}},
		// ZZ(π/2) ZZ(-π/2) = I.
		{"ZZ-inverse", []circuit.Gate{
			{Op: circuit.OpZZ, Q0: 0, Q1: 1, Param: math.Pi / 2},
			{Op: circuit.OpZZ, Q0: 0, Q1: 1, Param: -math.Pi / 2}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				tb := mustNew(t, 5)
				mustRun(t, tb, randomClifford(rng, 5, 30))
				before := tb.Clone()
				for _, g := range tc.seq {
					if err := tb.ApplyGate(g); err != nil {
						t.Fatal(err)
					}
				}
				if !equalTableau(tb, before) {
					t.Fatalf("trial %d: %s did not act as the identity", trial, tc.name)
				}
			}
		})
	}
}

// TestGHZStabilizerGroup verifies the textbook GHZ stabilizer generators and
// the sign/indefiniteness semantics of Expectation.
func TestGHZStabilizerGroup(t *testing.T) {
	const n = 6
	c := circuit.New(n)
	c.H(0)
	for q := 1; q < n; q++ {
		c.CX(q-1, q)
	}
	tb, err := FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}

	xAll := NewPauli(n)
	for q := 0; q < n; q++ {
		xAll.Set(q, true, false)
	}
	if got := tb.Expectation(xAll); got != 1 {
		t.Errorf("<X⊗...⊗X> = %d, want +1", got)
	}
	minusXAll := NewPauli(n)
	for q := 0; q < n; q++ {
		minusXAll.Set(q, true, false)
	}
	minusXAll.Phase = 2
	if got := tb.Expectation(minusXAll); got != -1 {
		t.Errorf("<-X⊗...⊗X> = %d, want -1", got)
	}
	for q := 0; q+1 < n; q++ {
		zz := NewPauli(n)
		zz.Set(q, false, true)
		zz.Set(q+1, false, true)
		if got := tb.Expectation(zz); got != 1 {
			t.Errorf("<Z%dZ%d> = %d, want +1", q, q+1, got)
		}
	}
	z0 := NewPauli(n)
	z0.Set(0, false, true)
	if got := tb.Expectation(z0); got != 0 {
		t.Errorf("<Z0> = %d, want 0 (indefinite)", got)
	}

	// The extracted generators all have expectation +1 by construction.
	for i := 0; i < n; i++ {
		p := tb.StabilizerPauli(i)
		if got := tb.Expectation(p); got != 1 {
			t.Errorf("generator %d (%v): expectation %d, want +1", i, p, got)
		}
	}

	// GHZ measurement: qubit 0 is a coin flip, the rest follow it exactly.
	for _, bit := range []bool{false, true} {
		tb2 := tb.Clone()
		out0, random := tb2.MeasureZ(0, func() bool { return bit })
		if !random {
			t.Fatal("GHZ Z0 measurement should be random")
		}
		for q := 1; q < n; q++ {
			out, random := tb2.MeasureZ(q, func() bool { t.Fatal("coin used"); return false })
			if random || out != out0 {
				t.Fatalf("qubit %d: outcome %d (random=%v), want deterministic %d", q, out, random, out0)
			}
		}
	}
}

// densePauliExpectation computes <ψ|P|ψ> in the dense simulator.
func densePauliExpectation(t *testing.T, st *sim.State, p *Pauli) float64 {
	t.Helper()
	tmp := st.Clone()
	for q := 0; q < p.N(); q++ {
		x := p.X[q>>6]>>uint(q&63)&1 == 1
		z := p.Z[q>>6]>>uint(q&63)&1 == 1
		var op circuit.Op
		switch {
		case x && z:
			op = circuit.OpY
		case x:
			op = circuit.OpX
		case z:
			op = circuit.OpZ
		default:
			continue
		}
		tmp.Apply(circuit.Gate{Op: op, Q0: q, Q1: -1})
	}
	var dot complex128
	for i := range st.Amp {
		dot += cmplx.Conj(st.Amp[i]) * tmp.Amp[i]
	}
	phase := complex(1, 0)
	switch p.Phase {
	case 1:
		phase = 1i
	case 2:
		phase = -1
	case 3:
		phase = -1i
	}
	v := phase * dot
	if math.Abs(imag(v)) > 1e-9 {
		t.Fatalf("non-real Pauli expectation %v", v)
	}
	return real(v)
}

// TestMeasurementDistributionVsDense is the engine cross-check property test:
// for seeded random Clifford circuits the stabilizer engine must induce
// exactly the dense simulator's measurement distribution. Exhaustively over
// all bitstrings at small n (ProjectZ products vs |amplitude|²), and via
// stabilizer-generator expectations up to 16 qubits.
func TestMeasurementDistributionVsDense(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(7) // exhaustive part: up to 8 qubits
		c := randomClifford(rng, n, 12+rng.Intn(50))
		tb, err := FromCircuit(c)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.NewState(n)
		if err != nil {
			t.Fatal(err)
		}
		st.Run(c)
		for b := 0; b < 1<<uint(n); b++ {
			prob := 1.0
			tb2 := tb.Clone()
			for q := 0; q < n && prob > 0; q++ {
				prob *= tb2.ProjectZ(q, b>>uint(q)&1)
			}
			amp := st.Amp[b]
			dense := real(amp)*real(amp) + imag(amp)*imag(amp)
			if math.Abs(prob-dense) > 1e-9 {
				t.Fatalf("trial %d (%d qubits): P(%0*b) stab %v vs dense %v", trial, n, n, b, prob, dense)
			}
		}
	}

	// Wider circuits: every stabilizer generator of the tableau must have
	// dense expectation exactly +1 — the n generators determine the state.
	for trial := 0; trial < 10; trial++ {
		n := 9 + rng.Intn(8) // 9..16
		c := randomClifford(rng, n, 40+rng.Intn(80))
		tb, err := FromCircuit(c)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.NewState(n)
		if err != nil {
			t.Fatal(err)
		}
		st.Run(c)
		for i := 0; i < n; i++ {
			p := tb.StabilizerPauli(i)
			if e := densePauliExpectation(t, st, p); math.Abs(e-1) > 1e-9 {
				t.Fatalf("trial %d (%d qubits): generator %d (%v) dense expectation %v, want +1", trial, n, i, p, e)
			}
		}
	}
}

// TestFrameVsDense checks the trajectory scorer: injecting a random Pauli
// error mid-circuit, the frame's commute-with-stabilizers verdict must equal
// the dense overlap (which is exactly 0 or 1 for Clifford trajectories).
func TestFrameVsDense(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(9)
		c := randomClifford(rng, n, 10+rng.Intn(40))
		pos := rng.Intn(len(c.Gates) + 1)
		q := rng.Intn(n)
		pauli := 1 + rng.Intn(3)

		tb, err := FromCircuit(c)
		if err != nil {
			t.Fatal(err)
		}
		fr := tb.NewFrame()
		switch pauli {
		case 1:
			fr.InjectX(q)
		case 2:
			fr.InjectY(q)
		case 3:
			fr.InjectZ(q)
		}
		for _, g := range c.Gates[pos:] {
			fr.Conjugate(g)
		}
		stabFid := 1.0
		if tb.Disturbs(fr) {
			stabFid = 0
		}

		ideal, err := sim.NewState(n)
		if err != nil {
			t.Fatal(err)
		}
		ideal.Run(c)
		noisy, err := sim.NewState(n)
		if err != nil {
			t.Fatal(err)
		}
		for i, g := range c.Gates {
			if i == pos {
				noisy.Apply(circuit.Gate{Op: []circuit.Op{0, circuit.OpX, circuit.OpY, circuit.OpZ}[pauli], Q0: q, Q1: -1})
			}
			noisy.Apply(g)
		}
		if pos == len(c.Gates) {
			noisy.Apply(circuit.Gate{Op: []circuit.Op{0, circuit.OpX, circuit.OpY, circuit.OpZ}[pauli], Q0: q, Q1: -1})
		}
		denseFid := sim.Fidelity(noisy, ideal)
		if math.Abs(denseFid-stabFid) > 1e-9 {
			t.Fatalf("trial %d (%d qubits, pauli %d at gate %d on q%d): frame says %v, dense says %v",
				trial, n, pauli, pos, q, stabFid, denseFid)
		}
	}
}

// TestNonClifford checks the structured rejection and the circuit classifier.
func TestNonClifford(t *testing.T) {
	tb := mustNew(t, 2)
	bad := []circuit.Gate{
		{Op: circuit.OpT, Q0: 0, Q1: -1},
		{Op: circuit.OpRZ, Q0: 0, Q1: -1, Param: 0.3},
		{Op: circuit.OpRX, Q0: 1, Q1: -1, Param: math.Pi / 3},
		{Op: circuit.OpZZ, Q0: 0, Q1: 1, Param: 1.1},
		{Op: circuit.OpU, Q0: 0, Q1: -1, Param: 2.2},
	}
	for _, g := range bad {
		err := tb.ApplyGate(g)
		var nce *NonCliffordError
		if !errors.As(err, &nce) {
			t.Errorf("gate %v: err = %v, want *NonCliffordError", g, err)
		}
		if circuit.IsCliffordGate(g) {
			t.Errorf("IsCliffordGate(%v) = true", g)
		}
	}
	// Run wraps the stream index.
	stream := []circuit.Gate{
		{Op: circuit.OpH, Q0: 0, Q1: -1},
		{Op: circuit.OpCX, Q0: 0, Q1: 1},
		{Op: circuit.OpT, Q0: 1, Q1: -1},
	}
	err := mustNew(t, 2).Run(stream)
	var nce *NonCliffordError
	if !errors.As(err, &nce) || nce.Index != 2 {
		t.Errorf("Run err = %v, want NonCliffordError at index 2", err)
	}
	if circuit.AllClifford(stream) {
		t.Error("AllClifford accepted a T gate")
	}
	if !circuit.AllClifford(stream[:2]) {
		t.Error("AllClifford rejected H+CX")
	}

	// Quarter-turn recognition tolerates float noise but not real angles.
	for _, tc := range []struct {
		theta float64
		k     int
		ok    bool
	}{
		{0, 0, true},
		{math.Pi / 2, 1, true},
		{-math.Pi / 2, 3, true},
		{math.Pi, 2, true},
		{2 * math.Pi, 0, true},
		{math.Pi/2 + 1e-12, 1, true},
		{math.Pi/2 + 1e-6, 0, false},
		{0.3, 0, false},
	} {
		k, ok := circuit.CliffordQuarterTurns(tc.theta)
		if ok != tc.ok || (ok && k != tc.k) {
			t.Errorf("CliffordQuarterTurns(%v) = (%d,%v), want (%d,%v)", tc.theta, k, ok, tc.k, tc.ok)
		}
	}
}

// TestNewBounds covers the width validation.
func TestNewBounds(t *testing.T) {
	for _, n := range []int{0, -1, MaxQubits + 1} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d) accepted", n)
		}
	}
	if _, err := New(MaxQubits); err != nil {
		t.Errorf("New(MaxQubits) rejected: %v", err)
	}
}
