// Quickstart: build a small circuit by hand, compile it with Atomique for
// the default reconfigurable atom array (10x10 SLM + two 10x10 AODs), and
// inspect the schedule the router produced.
package main

import (
	"fmt"
	"log"

	"atomique/internal/circuit"
	"atomique/internal/core"
	"atomique/internal/hardware"
)

func main() {
	// A GHZ state over 8 qubits followed by a ring of ZZ interactions.
	c := circuit.New(8)
	c.H(0)
	for i := 1; i < 8; i++ {
		c.CX(i-1, i)
	}
	for i := 0; i < 8; i++ {
		c.ZZ(i, (i+1)%8, 0.42)
	}

	cfg := hardware.DefaultConfig()
	res, err := core.Compile(cfg, c, core.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	m := res.Metrics
	fmt.Printf("compiled %d gates onto %d arrays\n", c.NumGates(), cfg.NumArrays())
	fmt.Printf("  qubit -> array assignment: %v\n", res.ArrayOf)
	fmt.Printf("  2Q executed: %d (%d SWAPs inserted)\n", m.N2Q, m.SwapCount)
	fmt.Printf("  depth: %d movement stages, max %d parallel gates\n",
		m.Depth2Q, res.Schedule.MaxParallelism())
	fmt.Printf("  movement: %.1f um total\n", m.TotalMoveDist*1e6)
	fmt.Printf("  estimated fidelity: %.4f\n", m.FidelityTotal())
	fmt.Println()

	for i, st := range res.Schedule.Stages {
		if len(st.Gates) == 0 {
			continue
		}
		fmt.Printf("stage %2d:", i)
		for _, g := range st.Gates {
			fmt.Printf("  %s@%s-%s", g.Op, res.SiteOf[g.SlotA], res.SiteOf[g.SlotB])
		}
		fmt.Println()
	}
}
