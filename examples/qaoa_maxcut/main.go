// QAOA MaxCut study: the workload class the paper's introduction motivates.
// Compiles one QAOA layer for MaxCut on d-regular graphs of growing degree
// and compares Atomique against the fixed-array baselines — reproducing in
// miniature the insight of Fig 16: the less local the problem graph, the
// larger the advantage of movement-based routing.
package main

import (
	"fmt"
	"log"

	"atomique/internal/arch"
	"atomique/internal/bench"
	"atomique/internal/core"
	"atomique/internal/hardware"
)

func main() {
	const n = 40
	cfg := hardware.DefaultConfig()

	fmt.Printf("QAOA MaxCut, %d qubits, one layer, d-regular graphs\n\n", n)
	fmt.Printf("%-7s %-10s %-10s %-10s %-12s %-12s\n",
		"degree", "2Q(FAA-R)", "2Q(FAA-T)", "2Q(Atom)", "fid(FAA-T)", "fid(Atom)")
	for _, d := range []int{2, 3, 4, 5, 6, 8} {
		circ := bench.QAOARegular(n, d, int64(d))

		rect, err := arch.Compile(arch.FAARectangular(n), circ, 1)
		if err != nil {
			log.Fatal(err)
		}
		tri, err := arch.Compile(arch.FAATriangular(n), circ, 1)
		if err != nil {
			log.Fatal(err)
		}
		at, err := core.Compile(cfg, circ, core.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-7d %-10d %-10d %-10d %-12.4f %-12.4f\n",
			d, rect.N2Q, tri.N2Q, at.Metrics.N2Q,
			tri.FidelityTotal(), at.Metrics.FidelityTotal())
	}
	fmt.Println("\nexpected shape: the FAA gate counts grow much faster with degree")
	fmt.Println("than Atomique's, and the fidelity gap widens (Fig 16).")
}
