// Topology explorer: how machine geometry shapes compilation quality.
// Sweeps the number of AOD arrays and the array aspect ratio for a fixed
// workload, reproducing the design-space walk of Fig 20 — square arrays
// minimise movement; extra AOD arrays enrich the coupling map.
package main

import (
	"fmt"
	"log"

	"atomique/internal/bench"
	"atomique/internal/circuit"
	"atomique/internal/core"
	"atomique/internal/hardware"
	"atomique/internal/metrics"
)

func main() {
	workload := bench.QSimRandom(40, 10, 0.5, 42)
	fmt.Println("workload: QSim-rand-40 (10 Pauli strings, p=0.5)")

	fmt.Println("\n-- number of AOD arrays (10x10 each) --")
	fmt.Printf("%-6s %-8s %-8s %-12s %-10s\n", "AODs", "2Q", "depth", "move(mm)", "fidelity")
	for n := 1; n <= 5; n++ {
		m := compile(hardware.SquareConfig(10, n), workload)
		fmt.Printf("%-6d %-8d %-8d %-12.3f %-10.4f\n",
			n, m.N2Q, m.Depth2Q, m.TotalMoveDist*1e3, m.FidelityTotal())
	}

	fmt.Println("\n-- array shape at ~48 sites per array (2 AODs) --")
	fmt.Printf("%-8s %-8s %-8s %-12s %-10s\n", "shape", "2Q", "depth", "move(mm)", "fidelity")
	for _, shape := range [][2]int{{24, 2}, {16, 3}, {12, 4}, {8, 6}, {7, 7}} {
		spec := hardware.ArraySpec{Rows: shape[0], Cols: shape[1]}
		cfg := hardware.Config{
			SLM:    spec,
			AODs:   []hardware.ArraySpec{spec, spec},
			Params: hardware.NeutralAtom(),
		}
		m := compile(cfg, workload)
		fmt.Printf("%dx%-6d %-8d %-8d %-12.3f %-10.4f\n",
			shape[0], shape[1], m.N2Q, m.Depth2Q, m.TotalMoveDist*1e3, m.FidelityTotal())
	}
	fmt.Println("\nexpected shape: fidelity peaks near square arrays and grows with AOD count.")
}

func compile(cfg hardware.Config, c *circuit.Circuit) metrics.Compiled {
	res, err := core.Compile(cfg, c, core.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	return res.Metrics
}
