// QASM pipeline: the interchange workflow a downstream user runs — parse an
// OpenQASM 2.0 circuit, compile it for the RAA, verify the schedule against
// the hardware constraints, and export the movement/pulse program as JSON
// for a control system.
package main

import (
	"fmt"
	"log"
	"os"

	"atomique/internal/core"
	"atomique/internal/hardware"
	"atomique/internal/qasm"
)

const src = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[6];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
rzz(pi/4) q[0],q[3];
rzz(pi/4) q[1],q[4];
rzz(pi/4) q[2],q[5];
rz(pi/8) q[3];
cx q[3],q[4];
cx q[4],q[5];
`

func main() {
	circ, err := qasm.ParseString(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d qubits, %d gates\n", circ.N, circ.NumGates())

	cfg := hardware.DefaultConfig()
	res, err := core.Compile(cfg, circ, core.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := core.VerifySchedule(res, core.Options{}); err != nil {
		log.Fatalf("schedule failed verification: %v", err)
	}
	fmt.Printf("compiled: %d stages, fidelity %.4f — schedule verified\n",
		res.Metrics.Depth2Q, res.Metrics.FidelityTotal())

	fmt.Println("\nJSON export (for a control system):")
	if err := core.ExportJSON(os.Stdout, cfg, res); err != nil {
		log.Fatal(err)
	}
}
