// Molecular quantum simulation: Trotterised H2 and LiH circuits (the QSim
// benchmark family) compiled with Atomique, with the per-source fidelity
// breakdown the paper uses in Fig 18 — showing where the error budget of a
// movement-based execution actually goes.
package main

import (
	"fmt"
	"log"

	"atomique/internal/bench"
	"atomique/internal/circuit"
	"atomique/internal/core"
	"atomique/internal/fidelity"
	"atomique/internal/hardware"
)

func main() {
	cfg := hardware.DefaultConfig()
	molecules := []struct {
		name string
		circ *circuit.Circuit
	}{
		{"H2 (4 qubits, 15 Pauli terms)", bench.H2()},
		{"LiH (8 qubits, molecular-statistics terms)", bench.LiH(8, 10)},
	}

	for _, mol := range molecules {
		res, err := core.Compile(cfg, mol.circ, core.Options{Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		fmt.Printf("%s\n", mol.name)
		fmt.Printf("  gates: %d 2Q + %d 1Q   depth: %d stages   swaps: %d\n",
			m.N2Q, m.N1Q, m.Depth2Q, m.SwapCount)
		fmt.Printf("  execution: %.4f s   movement: %.2f mm   coolings: %d\n",
			m.ExecutionTime, m.TotalMoveDist*1e3, m.CoolingEvents)
		fmt.Printf("  fidelity: %.4f\n", m.FidelityTotal())
		labels := fidelity.Labels()
		for i, v := range m.Fidelity.NegLog() {
			bar := ""
			for b := 0.0; b < v*20 && len(bar) < 60; b += 1 {
				bar += "#"
			}
			fmt.Printf("    -log10 %-18s %8.4f %s\n", labels[i], v, bar)
		}
		fmt.Println()
	}
}
