module atomique

go 1.24
